//! Regenerates every figure and proposition of the paper, plus the
//! measured B1/B2/B4 tables recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//! `reproduce [fig1|fig2|fig3|fig4|fig5|fig6|fig8|fig8matrix|props|b1|b2|b4|b6|b7|b8|b9|b10|b11|b12|b13|b14|b15|all]... [--trace] [--smoke]`
//!
//! Several experiments may be named in one invocation (`reproduce b8 b10`
//! runs both and writes one combined `BENCH_query.json`); no names means
//! `all`.
//!
//! `--trace` additionally prints the [`Database::execute_traced`] operator
//! tree for one representative query per query-running experiment;
//! `--smoke` shrinks the B8/B9/B10/B11/B12/B13/B14/B15 instances so CI
//! can run them in seconds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_bench::experiments;
use relmerge_bench::table;
use relmerge_core::{
    check_both, check_forward, is_key_relation_semantically, prop51_inds_key_based,
    prop51_keys_non_null, prop52_nna_only, Merge,
};
use relmerge_eer::{
    classify_generalization, classify_many_one_star, figures, repair, translate, translate_teorey,
    Amenability,
};
use relmerge_engine::{Database, QueryPlan};
use relmerge_obs as obs;
use relmerge_relational::{DatabaseState, InclusionDep, Tuple, Value};
use relmerge_workload::{consistent_state, star_schema, StarSpec, StateSpec};

/// Set by `--trace`: query experiments print one representative
/// operator tree.
static TRACE: AtomicBool = AtomicBool::new(false);
/// Set by `--smoke`: B8/B9/B10/B11/B12/B13/B14/B15 run at a CI-sized
/// scale.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// B8 rows stashed for `BENCH_query.json` (see [`write_query_json`]).
static B8_ROWS: Mutex<Vec<experiments::ParallelQueryRow>> = Mutex::new(Vec::new());
/// B10 rows stashed for `BENCH_query.json` (see [`write_query_json`]).
static B10_ROWS: Mutex<Vec<experiments::BuildCacheRow>> = Mutex::new(Vec::new());
/// B15 rows stashed for `BENCH_query.json` (see [`write_query_json`]).
static B15_ROWS: Mutex<Vec<experiments::PushdownRow>> = Mutex::new(Vec::new());

/// Writes `BENCH_query.json` from whatever B8/B10/B15 rows have been
/// stashed so far, so `b8`, `b10`, `b15`, and `all` each leave a file
/// carrying every section that ran this invocation.
fn write_query_json() {
    let b8 = B8_ROWS.lock().expect("b8 stash");
    let b10 = B10_ROWS.lock().expect("b10 stash");
    let b15 = B15_ROWS.lock().expect("b15 stash");
    let path = std::path::Path::new("BENCH_query.json");
    experiments::write_parallel_query_json(path, &b8, &b10, &b15).expect("write BENCH_query.json");
    println!("wrote {}", path.display());
}

fn trace_enabled() -> bool {
    TRACE.load(Ordering::Relaxed)
}

/// Prints the traced operator tree of `plan` against `db` (no-op unless
/// `--trace` was given).
fn trace_query(db: &Database, label: &str, plan: &QueryPlan) {
    if !trace_enabled() {
        return;
    }
    match db.execute_traced(plan) {
        Ok((_, _, trace)) => println!("\n-- trace: {label} --\n{trace}"),
        Err(e) => println!("\n-- trace: {label} -- failed: {e}"),
    }
}

fn main() {
    let mut picked: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--trace" => TRACE.store(true, Ordering::Relaxed),
            "--smoke" => SMOKE.store(true, Ordering::Relaxed),
            name => picked.push(name.to_owned()),
        }
    }
    let run = |name: &str| picked.is_empty() || picked.iter().any(|p| p == "all" || p == name);
    let mut timings: Vec<(&'static str, u64)> = Vec::new();
    let mut go = |label: &'static str, f: fn()| {
        let t = obs::timer("reproduce.experiment").field("name", label);
        f();
        timings.push((label, t.stop()));
    };
    if run("fig1") {
        go("fig1", fig1);
    }
    if run("fig2") {
        go("fig2", fig2);
    }
    if run("fig3") {
        go("fig3", fig3);
    }
    if run("fig4") {
        go("fig4", fig4);
    }
    if run("fig5") || run("fig6") {
        go("fig5+fig6", fig5_and_6);
    }
    if run("fig8") {
        go("fig8", fig8);
    }
    if run("fig8matrix") {
        go("fig8matrix", fig8_matrix);
    }
    if run("props") {
        go("props", props);
    }
    if run("b1") {
        go("b1", b1);
    }
    if run("b2") {
        go("b2", b2);
    }
    if run("b4") {
        go("b4", b4);
    }
    if run("b6") {
        go("b6", b6);
    }
    if run("b7") {
        go("b7", b7);
    }
    if run("b8") {
        go("b8", b8);
    }
    if run("b9") {
        go("b9", b9);
    }
    if run("b10") {
        go("b10", b10);
    }
    if run("b11") {
        go("b11", b11);
    }
    if run("b12") {
        go("b12", b12);
    }
    if run("b13") {
        go("b13", b13);
    }
    if run("b14") {
        go("b14", b14);
    }
    if run("b15") {
        go("b15", b15);
    }
    summary(&timings);
}

/// The closing report: wall time per experiment and the totals of every
/// counter the instrumented pipeline bumped along the way.
fn summary(timings: &[(&'static str, u64)]) {
    if timings.is_empty() {
        eprintln!("reproduce: nothing ran (unknown experiment name?)");
        return;
    }
    heading("Summary: per-experiment wall time");
    let total: u64 = timings.iter().map(|(_, ns)| ns).sum();
    let mut rows: Vec<Vec<String>> = timings
        .iter()
        .map(|(name, ns)| vec![(*name).to_owned(), format!("{:.1} ms", *ns as f64 / 1e6)])
        .collect();
    rows.push(vec![
        "total".to_owned(),
        format!("{:.1} ms", total as f64 / 1e6),
    ]);
    println!("{}", table::render(&["experiment", "wall time"], &rows));

    let snap = obs::snapshot_all();
    if !snap.counters.is_empty() {
        heading("Summary: counters");
        let rows: Vec<Vec<String>> = snap
            .counters
            .iter()
            .map(|(name, v)| vec![name.clone(), v.to_string()])
            .collect();
        println!("{}", table::render(&["counter", "total"], &rows));
    }
}

fn heading(title: &str) {
    println!("\n==== {title} ====\n");
}

/// Figure 1: the modular (BCNF) translation vs. the Teorey baseline, and
/// the semantic inconsistency the baseline admits.
fn fig1() {
    heading("Figure 1: ER schema, RS (modular) vs RS' (Teorey)");
    let eer = figures::fig1_eer();
    println!("{eer}");
    let rs = translate(&eer).expect("modular translation");
    println!("RS (modular, BCNF = {}):\n{rs}", rs.is_bcnf());
    let t = translate_teorey(&eer).expect("teorey translation");
    println!("RS' (Teorey):\n{}", t.schema);

    // The paper's complaint: RS' accepts an employee with a non-null DATE
    // and a null project NR.
    let mut st = DatabaseState::empty_for(&t.schema).expect("empty state");
    st.insert(
        "WORKS",
        Tuple::new([Value::Int(1), Value::Null, Value::Date(100)]),
    )
    .expect("insert");
    println!(
        "RS' accepts (SSN=1, NR=null, DATE=d100): {}",
        st.is_consistent(&t.schema).expect("check")
    );
    let repaired = repair(&t).expect("repair");
    println!(
        "After adding the paper's null constraint W.DATE E-> W.NR: {}",
        st.is_consistent(&repaired).expect("check")
    );
}

/// Figure 2: Merge(OFFER, TEACH) → ASSIGN, with and without a member
/// key-relation.
fn fig2() {
    heading("Figure 2: Merge {OFFER, TEACH} -> ASSIGN");
    use relmerge_relational::{
        Attribute, Domain, NullConstraint, RelationScheme, RelationalSchema,
    };
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new(
            "OFFER",
            vec![
                Attribute::new("O.CN", Domain::Int),
                Attribute::new("O.DN", Domain::Int),
            ],
            &["O.CN"],
        )
        .expect("scheme"),
    )
    .expect("add");
    rs.add_scheme(
        RelationScheme::new(
            "TEACH",
            vec![
                Attribute::new("T.CN", Domain::Int),
                Attribute::new("T.FN", Domain::Int),
            ],
            &["T.CN"],
        )
        .expect("scheme"),
    )
    .expect("add");
    rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.CN", "O.DN"]))
        .expect("nna");
    rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.CN", "T.FN"]))
        .expect("nna");
    println!("Input:\n{rs}");

    let m =
        Merge::plan_with_synthetic_key(&rs, &["OFFER", "TEACH"], "ASSIGN", &["CN"]).expect("merge");
    println!(
        "No key-relation in the set -> synthetic key CN.\nResult:\n{}",
        m.schema()
    );
    println!("BCNF preserved: {}", m.schema().is_bcnf());

    let mut with_ind = rs.clone();
    with_ind
        .add_ind(InclusionDep::new("TEACH", &["T.CN"], "OFFER", &["O.CN"]))
        .expect("ind");
    let m2 = Merge::plan(&with_ind, &["OFFER", "TEACH"], "ASSIGN").expect("merge");
    println!(
        "With TEACH[T.CN] <= OFFER[O.CN], OFFER is the key-relation \
         (Prop 3.1).\nResult:\n{}",
        m2.schema()
    );
}

/// Figure 3: the translation of Figure 7.
fn fig3() {
    heading("Figure 3: relational translation of the Figure 7 EER schema");
    let eer = figures::fig7_eer();
    println!("{eer}");
    let rs = translate(&eer).expect("translation");
    println!("{rs}");
    println!(
        "BCNF: {}  key-based INDs only: {}  NNA-only constraints: {}",
        rs.is_bcnf(),
        rs.key_based_inds_only(),
        rs.nna_only()
    );
}

/// Figure 4: Merge(COURSE, OFFER, TEACH) on the Figure 3 schema.
fn fig4() {
    heading("Figure 4: Merge {COURSE, OFFER, TEACH} -> COURSE'");
    let rs = translate(&figures::fig7_eer()).expect("fig 3 schema");
    let m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "COURSE'").expect("merge");
    println!("{}", m.schema());
    println!("BCNF preserved: {}", m.schema().is_bcnf());
    println!(
        "O.C.NR removable? {:?} (paper: no — ASSIST still references it)",
        m.removable("OFFER").err().map(|e| e.to_string())
    );
}

/// Figures 5 and 6: the four-way merge and the removal cascade.
fn fig5_and_6() {
    heading("Figure 5: Merge {COURSE, OFFER, TEACH, ASSIST} -> COURSE''");
    let rs = translate(&figures::fig7_eer()).expect("fig 3 schema");
    let mut m =
        Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE''").expect("merge");
    println!("{}", m.schema());
    println!(
        "Removable groups: {:?} (paper: O.C.NR, T.C.NR, A.C.NR)",
        m.removable_groups()
    );
    heading("Figure 6: Remove O.C.NR, T.C.NR, A.C.NR from COURSE''");
    m.remove_all_removable().expect("remove");
    println!("{}", m.schema());
    println!("BCNF preserved: {}", m.schema().is_bcnf());

    // Round-trip sanity on a random university state.
    let mut rng = StdRng::seed_from_u64(9);
    let u = relmerge_workload::generate_university(
        &relmerge_workload::UniversitySpec {
            courses: 100,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("university");
    let report = check_forward(&m, &u.state).expect("capacity check");
    println!(
        "Information capacity on a 100-course state: consistent={} round-trip={} values-preserved={}",
        report.forward_consistent, report.forward_round_trip, report.forward_values_preserved
    );
}

/// Figure 8: amenability classification.
fn fig8() {
    heading("Figure 8: structures amenable to single-relation representation");
    let cases = [
        (
            "8(i) generalization, multi-attribute children",
            classify_generalization(&figures::fig8_i(), "VEHICLE").expect("group"),
        ),
        (
            "8(ii) many-one star with relationship attributes",
            classify_many_one_star(&figures::fig8_ii(), "PRODUCT").expect("group"),
        ),
        (
            "8(iii) generalization, single-attribute children",
            classify_generalization(&figures::fig8_iii(), "ACCOUNT").expect("group"),
        ),
        (
            "8(iv) attribute-less many-one star",
            classify_many_one_star(&figures::fig8_iv(), "COURSE").expect("group"),
        ),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(label, g)| {
            vec![
                (*label).to_owned(),
                format!("{:?}", g.members),
                match g.amenability {
                    Amenability::NnaOnly => "NNA only".to_owned(),
                    Amenability::GeneralNullConstraints => "general null constraints".to_owned(),
                },
                g.violations.join("; "),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["structure", "members", "regime", "failed conditions"],
            &rows
        )
    );
    println!("Paper: (i),(ii) need general null constraints; (iii),(iv) only NNA.");
}

/// The §5.1 capability matrix: each Figure 8 structure against each DBMS
/// dialect — does SDT's merging option fire, and through which mechanism
/// is the result maintained?
fn fig8_matrix() {
    use relmerge_ddl::{run_sdt, Dialect, SdtOption};
    heading("Figure 8 x dialect: what merges where, and at what mechanism cost");
    let structures = [
        ("8(i)", figures::fig8_i()),
        ("8(ii)", figures::fig8_ii()),
        ("8(iii)", figures::fig8_iii()),
        ("8(iv)", figures::fig8_iv()),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, eer) in &structures {
        for dialect in Dialect::ALL {
            let out = run_sdt(eer, SdtOption::Merged, dialect).expect("sdt");
            rows.push(vec![
                (*label).to_owned(),
                dialect.name().to_owned(),
                format!("{} -> {}", out.scheme_count.0, out.scheme_count.1),
                out.merges_applied.to_string(),
                out.script.procedural_count().to_string(),
                out.script.unsupported().len().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table::render(
            &[
                "structure",
                "dialect",
                "schemes",
                "merges",
                "triggers/rules",
                "unsupported",
            ],
            &rows,
        )
    );
    println!(
        "Reading: structures (iii)/(iv) merge everywhere (NNA-only, Prop 5.2); \
         (i)/(ii) merge only where a procedural mechanism or CHECKs exist."
    );
}

/// Propositions 3.1, 4.1, 4.2, 5.1, 5.2 spot-checked on generated inputs.
fn props() {
    heading("Propositions 3.1 / 4.1 / 4.2 / 5.1 / 5.2");
    let rs = translate(&figures::fig7_eer()).expect("fig 3 schema");

    // Prop 3.1: syntactic key-relation matches the semantic definition.
    let mut rng = StdRng::seed_from_u64(3);
    let u = relmerge_workload::generate_university(
        &relmerge_workload::UniversitySpec {
            courses: 50,
            offer_ratio: 1.0,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("university");
    let sem =
        is_key_relation_semantically(&u.schema, &u.state, "COURSE", &["OFFER", "TEACH", "ASSIST"])
            .expect("semantic check");
    println!("Prop 3.1: COURSE covers the keys of {{OFFER,TEACH,ASSIST}} (offer_ratio=1): {sem}");

    // Prop 4.1 / 4.2 on a random star schema.
    let spec = StarSpec {
        satellites: 3,
        non_key_attrs: 2,
        externals: 0,
    };
    let schema = star_schema(&spec);
    let mut rng = StdRng::seed_from_u64(17);
    let state = consistent_state(&schema, &StateSpec::default(), &mut rng).expect("state");
    let mut merged = Merge::plan(&schema, &["ROOT", "S0", "S1", "S2"], "M").expect("merge");
    let r1 = check_forward(&merged, &state).expect("check");
    println!(
        "Prop 4.1 (Merge preserves capacity + BCNF) on a random star: {} (BCNF={})",
        r1.holds(),
        merged.schema().is_bcnf()
    );
    let merged_state = merged.apply(&state).expect("apply");
    merged.remove_all_removable().expect("remove");
    let r2 = check_both(&merged, &state, &merged.apply(&state).expect("apply")).expect("check");
    println!(
        "Prop 4.2 (Remove preserves capacity): {} (merged arity {} -> {})",
        r2.holds(),
        merged_state.relation("M").expect("rel").arity(),
        merged
            .apply(&state)
            .expect("apply")
            .relation("M")
            .expect("rel")
            .arity()
    );

    // Prop 5.1 / 5.2 on the university chain (Figure 4 vs Figure 5 sets).
    let three = ["COURSE", "OFFER", "TEACH"];
    let four = ["COURSE", "OFFER", "TEACH", "ASSIST"];
    println!(
        "Prop 5.1(i): merge {{COURSE,OFFER,TEACH}} keeps INDs key-based: {} (paper: no)",
        prop51_inds_key_based(&rs, &three).expect("check")
    );
    println!(
        "Prop 5.1(i): merge {{COURSE,OFFER,TEACH,ASSIST}}: {} (paper: yes)",
        prop51_inds_key_based(&rs, &four).expect("check")
    );
    println!(
        "Prop 5.1(ii): non-null keys for the 4-way merge: {}",
        prop51_keys_non_null(&rs, &four).expect("check")
    );
    let failures = prop52_nna_only(&rs, &four).expect("check");
    println!(
        "Prop 5.2 on the chain: {} failures {:?} (paper: fails — general constraints remain, Figure 6)",
        failures.len(),
        failures
            .iter()
            .map(|f| format!("({}, cond {})", f.member, f.condition))
            .collect::<Vec<_>>()
    );
    let iv = translate(&figures::fig8_iv()).expect("8(iv)");
    println!(
        "Prop 5.2 on Figure 8(iv)'s star: {} failures (paper: passes)",
        prop52_nna_only(&iv, &["COURSE", "OFFER", "TEACH"])
            .expect("check")
            .len()
    );
}

/// B1: merged-vs-unmerged query cost.
fn b1() {
    heading("B1: query speedup (merged vs unmerged), university workload");
    let rows = experiments::query_speedup(&[100, 1_000, 10_000], 2_000).expect("b1");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.courses.to_string(),
                r.unmerged_probes.to_string(),
                r.merged_probes.to_string(),
                format!("{:.0}", r.unmerged_ns),
                format!("{:.0}", r.merged_ns),
                format!("{:.2}x", r.point_speedup),
                format!("{:.2}x", r.scan_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "courses",
                "probes(unmerged)",
                "probes(merged)",
                "point ns(unmerged)",
                "point ns(merged)",
                "point speedup",
                "scan speedup",
            ],
            &table_rows,
        )
    );
    if trace_enabled() {
        let (u, m) = experiments::university_merge(1_000, 42).expect("trace instance");
        let (unmerged, merged) =
            experiments::university_databases(&u, &m).expect("trace databases");
        let nr = u.offered_courses[0];
        trace_query(
            &unmerged,
            "b1 unmerged point query",
            &experiments::unmerged_point_query(nr),
        );
        trace_query(
            &merged,
            "b1 merged point query",
            &experiments::merged_point_query(nr),
        );
    }
}

/// B2: constraint-maintenance cost.
fn b2() {
    heading("B2: maintenance cost per inserted course bundle");
    let rows = experiments::maintenance_cost(5_000).expect("b2");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.entities.to_string(),
                r.statements.to_string(),
                r.declarative.to_string(),
                r.procedural.to_string(),
                format!("{:.0}", r.ns_per_entity),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "scenario",
                "entities",
                "statements",
                "declarative checks",
                "procedural checks",
                "ns/entity",
            ],
            &table_rows,
        )
    );
}

/// B6: mixed read-mostly workload, merged vs unmerged.
fn b6() {
    heading("B6: mixed workload (80% point reads, 10% reverse reads, 10% DML)");
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for courses in [1_000usize, 10_000] {
        let rows = experiments::mixed_workload(courses, 20_000).expect("b6");
        for r in &rows {
            table_rows.push(vec![
                courses.to_string(),
                r.scenario.clone(),
                r.ops.to_string(),
                r.reads.to_string(),
                r.writes.to_string(),
                format!("{:.0}", r.ns_per_op),
            ]);
        }
        let speedup = rows[0].ns_per_op / rows[1].ns_per_op;
        table_rows.push(vec![
            courses.to_string(),
            format!("-> merged speedup {speedup:.2}x"),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["courses", "scenario", "ops", "reads", "writes", "ns/op"],
            &table_rows,
        )
    );
    if trace_enabled() {
        let (u, m) = experiments::university_merge(1_000, 21).expect("trace instance");
        let (unmerged, _) = experiments::university_databases(&u, &m).expect("trace databases");
        trace_query(
            &unmerged,
            "b6 reverse lookup (courses by faculty)",
            &experiments::unmerged_by_faculty_query(10_000),
        );
    }
}

/// B7: batched DML with deferred checking vs per-statement application.
fn b7() {
    heading("B7: batched DML (deferred group validation) vs per-statement");
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for courses in [1_000usize, 10_000] {
        let rows = experiments::batch_dml(courses, 4_000, 64).expect("b7");
        for r in &rows {
            table_rows.push(vec![
                courses.to_string(),
                r.scenario.clone(),
                format!("{} / {}", r.statements, r.batches),
                format!("{} -> {}", r.eager_checks, r.batched_checks),
                format!("{} -> {}", r.eager_probes, r.batched_probes),
                r.deferred_checks.to_string(),
                format!("{:.2}x", r.eager_ns / r.batched_ns),
            ]);
        }
    }
    println!(
        "{}",
        table::render(
            &[
                "courses",
                "scenario",
                "stmts / batches",
                "checks (eager -> batched)",
                "probes (eager -> batched)",
                "deferred",
                "speedup",
            ],
            &table_rows,
        )
    );
    println!(
        "Reading: deferred commit validates each constraint once per touched \
         relation and dedupes repeated foreign-key probes, so the batched run \
         does strictly fewer checks and probes for the identical final state."
    );
}

/// B8: the morsel-parallel executor and cost-based hash joins versus the
/// serial index-nested-loop baseline, on the unmerged university chain.
/// Emits `BENCH_query.json` for CI and result-comparison tooling.
fn b8() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, iters) = if smoke { (4_000, 3) } else { (40_000, 5) };
    heading("B8: parallel executor + cost-based joins vs serial INL");
    println!(
        "scale: {courses} courses ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    let rows = experiments::parallel_query(courses, iters).expect("b8");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.clone(),
                r.workers.to_string(),
                r.rows_out.to_string(),
                format!("{:.2} ms", r.baseline_ns / 1e6),
                format!("{:.2} ms", r.parallel_ns / 1e6),
                format!("{:.2}x", r.speedup),
                format!("{:.0}", r.rows_per_sec),
                r.morsels.to_string(),
                format!("{} -> {}", r.baseline_probes, r.index_probes),
                format!("{} -> {}", r.baseline_scanned, r.rows_scanned),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "query",
                "workers",
                "rows",
                "INL baseline",
                "measured",
                "speedup vs INL",
                "rows/s",
                "morsels",
                "probes (INL -> cost)",
                "scanned (INL -> cost)",
            ],
            &table_rows,
        )
    );
    // The composite win is structural (quadratic forced-INL scan vs one
    // build-side scan) and must show at every worker count. The chain's
    // forced-INL baseline does near-identical per-row work to the
    // borrowed-build hash plan, so its end-to-end win is thread-level: on
    // a single-core host the honest value is parity, and only multi-core
    // hosts are required to beat the serial baseline.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for r in &rows {
        if r.query.starts_with("composite") {
            assert!(
                r.speedup > 1.0,
                "the composite query must beat the quadratic INL baseline: {r:?}"
            );
        } else if cores > 1 && r.workers > 1 && r.workers <= cores {
            assert!(
                r.speedup > 1.0,
                "multi-worker chain rows must beat the serial INL baseline \
                 on a {cores}-core host: {r:?}"
            );
        } else {
            assert!(
                r.speedup > 0.5 && r.speedup < 2.5,
                "chain rows must sit near INL parity on this host: {r:?}"
            );
        }
    }
    if cores == 1 {
        println!(
            "Note: recorded on a single-core host — chain-scan rows measure \
             thread overhead only (≈1.0x); the composite rows carry the \
             measured end-to-end win."
        );
    }
    *B8_ROWS.lock().expect("b8 stash") = rows;
    write_query_json();
    if trace_enabled() {
        use relmerge_engine::DbmsProfile;
        let mut rng = StdRng::seed_from_u64(42);
        let u = relmerge_workload::generate_university(
            &relmerge_workload::UniversitySpec {
                courses: 1_000,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("trace instance");
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("trace db");
        db.load_state(&u.state).expect("load");
        trace_query(
            &db,
            "b8 chain scan (borrowed-index hash joins)",
            &experiments::unmerged_scan_query(),
        );
        trace_query(
            &db,
            "b8 composite join (transient hash build)",
            &experiments::composite_no_index_query(),
        );
    }
}

/// B9: the fault-torture matrix — every batch injection site × arrival
/// index, in error and panic mode, must abort with a typed error, verify
/// clean, and roll back byte-identical to the pre-batch snapshot.
fn b9() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, batch_size) = if smoke { (300, 12) } else { (2_000, 24) };
    heading("B9: fault-torture matrix (typed abort + integrity + rollback)");
    println!(
        "scale: {courses} courses, batch of {batch_size} statements ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    // The panic-mode cells deliberately panic inside the engine; the
    // panics are caught and converted to typed errors, but the default
    // hook would still spray a backtrace line per cell. Silence it for
    // the duration of the matrix only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let rows = experiments::fault_torture(courses, batch_size, 11);
    std::panic::set_hook(default_hook);
    let rows = rows.expect("b9");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.site.clone(),
                r.mode.clone(),
                r.cells.to_string(),
                r.injections.to_string(),
                r.typed_errors.to_string(),
                r.clean_reports.to_string(),
                r.snapshot_matches.to_string(),
                r.no_fire.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "site",
                "mode",
                "cells",
                "fired",
                "typed errors",
                "clean integrity",
                "rollback == snapshot",
                "no-fire",
            ],
            &table_rows,
        )
    );
    let all_ok = rows.iter().all(|r| {
        r.no_fire == 0
            && r.injections == r.cells
            && r.typed_errors == r.injections
            && r.clean_reports == r.injections
            && r.snapshot_matches == r.injections
    });
    assert!(all_ok, "every torture cell must recover: {rows:?}");
    println!(
        "Reading: every injected fault and panic aborted exactly one batch \
         with a typed error; integrity verification found zero violations \
         and the state always matched the pre-batch snapshot."
    );
}

/// B10: the versioned build-side cache — cold (rebuild before every
/// execution) versus warm (every execution hits the cache) on the
/// build-heavy composite join, swept over worker counts. Emits the B10
/// section of `BENCH_query.json`.
fn b10() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, iters) = if smoke { (4_000, 3) } else { (40_000, 5) };
    heading("B10: versioned build-side cache (cold rebuild vs warm hit)");
    println!(
        "scale: {courses} courses ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    let rows = experiments::build_cache_speedup(courses, iters).expect("b10");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!("{:.2} ms", r.cold_ns / 1e6),
                format!("{:.2} ms", r.warm_ns / 1e6),
                format!("{:.2}x", r.speedup),
                r.cache_hits.to_string(),
                r.cache_misses.to_string(),
                format!("{:.1} KiB", r.build_bytes as f64 / 1024.0),
                r.parallel_builds.to_string(),
                r.saved_allocs.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "workers",
                "cold",
                "warm",
                "speedup vs serial cold",
                "hits",
                "misses",
                "build size",
                "parallel builds",
                "saved allocs/run",
            ],
            &table_rows,
        )
    );
    assert!(
        rows.iter()
            .all(|r| r.cache_hits >= 1 && r.warm_ns < r.cold_ns),
        "every warm run must hit the cache and beat its cold run: {rows:?}"
    );
    if !smoke {
        assert!(
            rows.iter().any(|r| r.workers > 1 && r.speedup >= 2.0),
            "a multi-worker warm run must be >= 2x over the serial cold \
             baseline at full scale: {rows:?}"
        );
    }
    println!(
        "Reading: warm executions skip the build entirely — the cache key \
         (relation, probe attrs, version) guarantees a hit can never serve \
         stale data, and stats are charged as if the build ran, so cold and \
         warm runs are indistinguishable to the caller."
    );
    *B10_ROWS.lock().expect("b10 stash") = rows;
    write_query_json();
    if trace_enabled() {
        use relmerge_engine::DbmsProfile;
        let mut rng = StdRng::seed_from_u64(42);
        let u = relmerge_workload::generate_university(
            &relmerge_workload::UniversitySpec {
                courses: 1_000,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("trace instance");
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("trace db");
        db.load_state(&u.state).expect("load");
        let plan = experiments::composite_no_index_query();
        let _ = db.execute(&plan).expect("populate cache");
        trace_query(&db, "b10 composite join, warm (cached build)", &plan);
    }
}

/// B11: durability — WAL append overhead against an in-memory twin,
/// literal log truncation at every acked boundary plus random mid-record
/// offsets, the three durability fault sites in both modes, and recovery
/// time against replayed log length. Emits `BENCH_wal.json`.
fn b11() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, n_batches, batch_size) = if smoke { (200, 12, 8) } else { (1_000, 48, 16) };
    heading("B11: durability (write-ahead log + snapshots + crash recovery)");
    println!(
        "scale: {courses} courses, {n_batches} batches of {batch_size} statements ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    // The fault matrix has panic-mode cells; silence the default hook for
    // the duration (the panics are caught and typed, but the hook would
    // still spray one backtrace line per cell).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let s = experiments::wal_torture(courses, n_batches, batch_size, 11);
    std::panic::set_hook(default_hook);
    let s = s.expect("b11");
    println!(
        "append overhead: durable {:.1} µs/batch vs in-memory {:.1} µs/batch ({:+.1}%)",
        s.durable_batch_us,
        s.memory_batch_us,
        s.append_overhead * 100.0
    );
    println!(
        "crash truncation: {}/{} cut points recovered verify-clean and \
         byte-identical to the last durably-acked prefix\n",
        s.truncation_clean, s.truncation_cells
    );
    assert_eq!(
        s.truncation_clean, s.truncation_cells,
        "every crash point must recover: {s:?}"
    );
    let table_rows: Vec<Vec<String>> = s
        .torture
        .iter()
        .map(|r| {
            vec![
                r.site.clone(),
                r.mode.clone(),
                r.cells.to_string(),
                r.injections.to_string(),
                r.typed_errors.to_string(),
                r.clean_reports.to_string(),
                r.snapshot_matches.to_string(),
                r.no_fire.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "site",
                "mode",
                "cells",
                "fired",
                "typed/contained",
                "clean integrity",
                "state verified",
                "no-fire",
            ],
            &table_rows,
        )
    );
    let all_ok = s.torture.iter().all(|r| {
        r.no_fire == 0
            && r.injections == r.cells
            && r.typed_errors == r.injections
            && r.clean_reports == r.injections
            && r.snapshot_matches == r.injections
    });
    assert!(all_ok, "every durability torture cell must recover: {s:?}");
    let curve_rows: Vec<Vec<String>> = s
        .recovery
        .iter()
        .map(|r| {
            vec![
                r.batches.to_string(),
                r.records.to_string(),
                format!("{:.1} KiB", r.wal_bytes as f64 / 1024.0),
                format!("{:.2} ms", r.replay_ns as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "batches in log",
                "records replayed",
                "WAL bytes",
                "recovery time"
            ],
            &curve_rows,
        )
    );
    println!(
        "Reading: a committed batch is on disk before it is visible, so \
         cutting the log at any byte — acked boundary or torn mid-record \
         tail — recovers exactly the durably-acked prefix; a failed append \
         aborts its batch on disk and in memory, a failed snapshot costs \
         only replay time, and a fault during recovery leaves the \
         directory clean for the retry."
    );
    let path = std::path::Path::new("BENCH_wal.json");
    experiments::write_wal_json(path, &s).expect("write BENCH_wal.json");
    println!("wrote {}", path.display());
}

/// B12: the concurrent multi-session engine — N client threads of the
/// mixed university workload over one shared `Store` (snapshot readers,
/// serialized writers, store-wide versioned build cache). Emits
/// `BENCH_concurrency.json`.
fn b12() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, ops) = if smoke { (150, 64) } else { (800, 320) };
    heading("B12: concurrent sessions (snapshot readers / serialized writers / shared cache)");
    println!(
        "scale: {courses} courses, {ops} ops per client thread ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    let s = experiments::concurrent_sessions(courses, ops).expect("b12");
    println!(
        "single-Database baseline: {:.1} µs/op (thread 0's stream, no store)",
        s.baseline_ns_per_op / 1e3
    );
    println!(
        "deterministic cross-session probe: {} shared-cache hit(s) — one \
         session's build served another session's identical join\n",
        s.cross_session_hits
    );
    let table_rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                r.ops.to_string(),
                r.reads.to_string(),
                r.writes.to_string(),
                format!("{:.0}", r.ops_per_sec),
                format!("{:.1} µs", r.read_p50_ns / 1e3),
                format!("{:.1} µs", r.read_p95_ns / 1e3),
                r.cache_hits.to_string(),
                r.cache_misses.to_string(),
                r.frozen_reads.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "threads",
                "ops",
                "reads",
                "writes",
                "ops/s",
                "read p50",
                "read p95",
                "cache hits",
                "misses",
                "frozen re-reads",
            ],
            &table_rows,
        )
    );
    println!(
        "Reading: every read ran against a pinned copy-on-write snapshot \
         while writers committed through the serialized path; the retained \
         pins re-read byte-identical after the storm. Throughput-vs-threads \
         is honest wall clock — on a single-core host extra threads add \
         scheduling overhead rather than speedup, while the shared cache \
         still converts one session's build into other sessions' hits."
    );
    let path = std::path::Path::new("BENCH_concurrency.json");
    experiments::write_concurrency_json(path, &s).expect("write BENCH_concurrency.json");
    println!("wrote {}", path.display());
}

/// B13: the online merge advisor end to end — skewed reads drive the
/// profiler, the profiler drives the advisor, the advisor's top proposal
/// is migrated on the live database, and the identical stream replays
/// against the merged schema. Emits `BENCH_merge.json`.
fn b13() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, n_ops) = if smoke { (500, 600) } else { (10_000, 20_000) };
    heading("B13: online merge (profiler -> advisor -> live migration -> replay)");
    println!(
        "scale: {courses} courses, {n_ops} skewed reads ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    // The migration fault matrix has panic-mode cells; silence the default
    // hook for the duration (the panics are caught and typed, but the hook
    // would still spray one backtrace line per cell).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let s = experiments::online_merge(courses, n_ops, 13);
    std::panic::set_hook(default_hook);
    let s = s.expect("b13");
    println!(
        "advisor chose {:?} -> {} (observed cost {}); migrated {} rows in {} chunks\n",
        s.members, s.merged_name, s.observed_cost, s.rows_migrated, s.chunks_applied
    );
    let table_rows = vec![
        vec![
            "index probes".to_owned(),
            s.pre_probes.to_string(),
            s.post_probes.to_string(),
            format!("{:.2}x", s.pre_probes as f64 / s.post_probes.max(1) as f64),
        ],
        vec![
            "rows scanned".to_owned(),
            s.pre_rows_scanned.to_string(),
            s.post_rows_scanned.to_string(),
            if s.pre_rows_scanned == 0 {
                "n/a".to_owned()
            } else {
                format!(
                    "{:.2}x",
                    s.pre_rows_scanned as f64 / s.post_rows_scanned.max(1) as f64
                )
            },
        ],
        vec![
            "median latency (us)".to_owned(),
            format!("{:.1}", s.pre_median_us),
            format!("{:.1}", s.post_median_us),
            format!("{:.2}x", s.pre_median_us / s.post_median_us.max(1e-9)),
        ],
    ];
    println!(
        "{}",
        table::render(
            &["workload metric", "pre-merge", "post-merge", "improvement"],
            &table_rows,
        )
    );
    let torture_rows: Vec<Vec<String>> = s
        .torture
        .iter()
        .map(|r| {
            vec![
                r.site.clone(),
                r.mode.clone(),
                r.cells.to_string(),
                r.typed_errors.to_string(),
                r.clean_reports.to_string(),
                r.snapshot_matches.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "migration site",
                "mode",
                "cells",
                "typed errors",
                "clean integrity",
                "rollback == snapshot",
            ],
            &torture_rows,
        )
    );
    // The headline acceptance criteria, re-asserted on the summary: the
    // probe count strictly drops, capacity is preserved (Props 4.1/4.2),
    // and — in the full-scale release run — the median latency drops too.
    assert!(s.capacity_4_1 && s.capacity_both, "{s:?}");
    assert!(s.post_probes < s.pre_probes, "{s:?}");
    if !smoke && cfg!(not(debug_assertions)) {
        assert!(
            s.post_median_us < s.pre_median_us,
            "full-scale post-merge median latency must drop: {s:?}"
        );
    }
    println!(
        "byte-identical post-merge replay at worker counts {:?}; capacity \
         4.1={} 4.1+4.2={}",
        s.workers, s.capacity_4_1, s.capacity_both
    );
    let path = std::path::Path::new("BENCH_merge.json");
    experiments::write_merge_json(path, &s).expect("write BENCH_merge.json");
    println!("wrote {}", path.display());
    println!(
        "Reading: the profiler's hot-join evidence picked the paper's \
         COURSE chain unprompted; the live migration committed atomically \
         (every injected fault rolled back byte-identically), and the \
         replayed workload pays strictly fewer probes on the merged schema."
    );
    if trace_enabled() {
        use relmerge_engine::DbmsProfile;
        let mut rng = StdRng::seed_from_u64(42);
        let u = relmerge_workload::generate_university(
            &relmerge_workload::UniversitySpec {
                courses: 1_000,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("trace instance");
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("trace db");
        db.load_state(&u.state).expect("load");
        let mut plan = Merge::plan(
            &u.schema,
            &["COURSE", "OFFER", "TEACH", "ASSIST"],
            "COURSE_M",
        )
        .expect("plan");
        plan.remove_all_removable().expect("remove");
        db.migrate(&plan).expect("migrate");
        trace_query(
            &db,
            "b13 merged point query (post-migration)",
            &experiments::merged_point_query(u.offered_courses[0]),
        );
    }
}

/// B14: the workload profiler on a Zipf-skewed read mix — per-fingerprint
/// attribution, allocation tracking, and the hot-join ranking that feeds
/// the merge advisor. Emits `BENCH_profile.json`.
fn b14() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, n_ops, top_k) = if smoke {
        (500, 1_000, 5)
    } else {
        (10_000, 20_000, 8)
    };
    heading("B14: workload profiler (skewed read mix, hot-join ranking)");
    println!(
        "scale: {courses} courses, {n_ops} skewed reads ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    let s = experiments::workload_profile(courses, n_ops, top_k).expect("b14");
    println!(
        "fingerprints: {} across {} executions; {} probes, {} rows scanned, \
         {} intermediate bytes (peak {})\n",
        s.fingerprints,
        s.executions,
        s.index_probes,
        s.rows_scanned,
        s.intermediate_bytes,
        s.peak_intermediate_bytes
    );
    let table_rows: Vec<Vec<String>> = s
        .hot_joins
        .iter()
        .map(|h| {
            vec![
                format!("#{}", h.rank),
                h.edge.clone(),
                h.cumulative_cost.to_string(),
                h.index_probes.to_string(),
                h.rows_scanned.to_string(),
                h.executions.to_string(),
                format!("{:.1} KiB", h.intermediate_bytes as f64 / 1024.0),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "rank",
                "join edge",
                "cost",
                "probes",
                "scanned",
                "execs",
                "bytes"
            ],
            &table_rows,
        )
    );
    // `workload_profile` already asserted exactness and determinism;
    // re-state the advisor-facing property on the rendered rows.
    assert!(
        s.hot_joins
            .windows(2)
            .all(|w| w[0].cumulative_cost >= w[1].cumulative_cost),
        "ranking must be sorted by cumulative cost: {:?}",
        s.hot_joins
    );
    let path = std::path::Path::new("BENCH_profile.json");
    experiments::write_profile_json(path, &s).expect("write BENCH_profile.json");
    println!("wrote {}", path.display());
    println!(
        "Reading: the top edges are exactly the COURSE->OFFER->TEACH/ASSIST \
         chain the paper merges away — the profiler's ranking reproduces the \
         advisor's motivating evidence from observed load, and its totals sum \
         exactly to the per-query stats (asserted)."
    );
    if trace_enabled() {
        use relmerge_engine::DbmsProfile;
        let mut rng = StdRng::seed_from_u64(42);
        let u = relmerge_workload::generate_university(
            &relmerge_workload::UniversitySpec {
                courses: 1_000,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("trace instance");
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("trace db");
        db.load_state(&u.state).expect("load");
        trace_query(
            &db,
            "b14 point query (the hot fingerprint)",
            &experiments::unmerged_point_query(0),
        );
    }
}

/// B15: optimizer-driven predicate pushdown — filters simplified, split
/// into conjuncts, and evaluated at the scan, probe, and build sites
/// instead of on the assembled result. Emits the B15 section of
/// `BENCH_query.json`.
fn b15() {
    let smoke = SMOKE.load(Ordering::Relaxed);
    let (courses, iters) = if smoke { (1_500, 3) } else { (8_000, 5) };
    heading("B15: predicate pushdown (evaluate filters where the data lives)");
    println!(
        "scale: {courses} courses ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );
    let rows = experiments::predicate_pushdown(courses, iters).expect("b15");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.clone(),
                r.rows_out.to_string(),
                format!("{} -> {}", r.off_scanned, r.on_scanned),
                format!("{} -> {}", r.off_probes, r.on_probes),
                format!("{:.1}x", r.scan_reduction),
                format!("{:.2} ms", r.off_ns / 1e6),
                format!("{:.2} ms", r.on_ns / 1e6),
                format!("{:.2}x", r.speedup),
                r.pushed_conjuncts.to_string(),
                r.pruned_rows.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "query",
                "rows",
                "scanned (off -> on)",
                "probes (off -> on)",
                "scan cut",
                "off",
                "on",
                "speedup",
                "pushed",
                "pruned rows",
            ],
            &table_rows,
        )
    );
    // `predicate_pushdown` already asserted byte-identity, the >= 10x
    // chain scan reduction, and the scan-to-lookup upgrade; at full
    // scale the chain's structural win must also show on the clock.
    if !smoke {
        assert!(
            rows[0].speedup > 1.0,
            "pushdown must beat the top-of-plan filter on the selective \
             chain at full scale: {rows:?}"
        );
    }
    println!(
        "Reading: the optimizer partitions the filter into conjuncts and \
         evaluates each at the lowest operator that can answer it — the \
         selective chain prunes the stream before the quadratic join, and \
         the root equality becomes an index point lookup (zero scans). \
         Results are byte-identical with the knob on and off (asserted)."
    );
    *B15_ROWS.lock().expect("b15 stash") = rows;
    write_query_json();
    if trace_enabled() {
        use relmerge_engine::{DbmsProfile, JoinStep, Predicate};
        let mut rng = StdRng::seed_from_u64(42);
        let u = relmerge_workload::generate_university(
            &relmerge_workload::UniversitySpec {
                courses: 1_000,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("trace instance");
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("trace db");
        db.load_state(&u.state).expect("load");
        trace_query(
            &db,
            "b15 selective chain (Eq pushed to the TEACH probe)",
            &QueryPlan::scan("COURSE")
                .join(JoinStep::inner("TEACH", &["C.NR"], &["T.C.NR"]))
                .join(JoinStep::inner(
                    "ASSIST",
                    &["T.C.NR", "T.F.SSN"],
                    &["A.C.NR", "A.S.SSN"],
                ))
                .filter(Predicate::eq("T.F.SSN", 10_000_i64)),
        );
        let offered = *u.offered_courses.first().expect("offered course");
        trace_query(
            &db,
            "b15 root Eq upgrade (scan -> lookup)",
            &QueryPlan::scan("COURSE")
                .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
                .filter(Predicate::eq("C.NR", offered)),
        );
    }
}

/// B4: the effect of `Remove`.
fn b4() {
    heading("B4: effect of Remove on the merged relation");
    let rows = experiments::remove_effect(&[100, 1_000, 10_000]).expect("b4");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.courses.to_string(),
                format!("{} -> {}", r.arity.0, r.arity.1),
                format!("{} -> {}", r.values.0, r.values.1),
                format!("{} -> {}", r.nulls.0, r.nulls.1),
                format!("{} -> {}", r.constraints.0, r.constraints.1),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "courses",
                "arity",
                "stored values",
                "stored nulls",
                "null constraints"
            ],
            &table_rows,
        )
    );
}
