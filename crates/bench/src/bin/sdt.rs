//! `sdt` — a command-line reimplementation of the paper's Schema
//! Definition and Translation tool \[12\].
//!
//! ```text
//! sdt [--demo <fig1|fig7|fig8i|fig8ii|fig8iii|fig8iv|random[:SEED]>]
//!     [--dialect <db2|sybase40|ingres63|sql92>]
//!     [--merge]            use merging (SDT option ii); default is 1:1
//!     [--migration]        also print data-migration SQL for each merge
//!     [--advise]           deploy the 1:1 schema live, run a probe
//!                          workload, and print the advisor's ranked
//!                          workload-backed merge proposals
//!     [--migrate]          like --advise, then execute the admissible
//!                          proposals online against the live database
//!     [--report]           print merge reports instead of raw schemas
//!     [--trace]            print the span tree of the run to stderr
//!     [--metrics <text|json>]  print collected metrics after the run
//!     [--profile <text|json|chrome>]  print the workload profile and
//!                          hot-join ranking (chrome: a Chrome-trace JSON
//!                          array of the run's spans for chrome://tracing)
//!     [--data-dir <dir>]   durable engine mode: recover the database in
//!                          <dir> if it holds a snapshot (printing a
//!                          one-line recovery report), otherwise initialize
//!                          <dir> and seed it with the demo's 1:1 schema
//!                          and probe state through the write-ahead log
//!     [--recover]          require recovery: fail instead of initializing
//!                          when --data-dir holds no snapshot
//! ```
//!
//! Example: `sdt --demo fig7 --dialect sybase40 --merge --migration`
//!
//! `--metrics` also runs a small engine *maintenance probe*: the generated
//! schema is deployed to the in-memory engine under the dialect's capability
//! profile and a synthetic state is inserted tuple-by-tuple, so the metric
//! output includes per-mechanism (declarative vs. procedural) constraint
//! check counts and latencies, plus the tracer's dropped-span count and
//! overflow sampling rate. `--profile` additionally runs a *query probe*
//! (scans, point lookups, and one join per inclusion dependency) and prints
//! the per-fingerprint workload profile with the hot-join ranking the merge
//! advisor consumes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_core::{Advisor, MergeReport};
use relmerge_ddl::{advisor_config_for, backward_migration, forward_migration, generate, Dialect};
use relmerge_eer::{figures, model::EerSchema, translate};
use relmerge_engine::{Database, DbmsProfile, DurabilityConfig, EngineConfig, JoinStep, QueryPlan};
use relmerge_obs as obs;
use relmerge_relational::{DatabaseState, RelationalSchema, Tuple};
use relmerge_workload::{consistent_state, random_eer, EerSpec, StateSpec};

#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum ProfileFormat {
    Text,
    Json,
    Chrome,
}

struct Args {
    demo: String,
    dialect: Dialect,
    merge: bool,
    migration: bool,
    advise: bool,
    migrate: bool,
    report: bool,
    trace: bool,
    metrics: Option<MetricsFormat>,
    profile: Option<ProfileFormat>,
    data_dir: Option<std::path::PathBuf>,
    recover: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        demo: "fig7".to_owned(),
        dialect: Dialect::Sql92,
        merge: false,
        migration: false,
        advise: false,
        migrate: false,
        report: false,
        trace: false,
        metrics: None,
        profile: None,
        data_dir: None,
        recover: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--demo" => {
                args.demo = it.next().ok_or("--demo needs a value")?;
            }
            "--dialect" => {
                let v = it.next().ok_or("--dialect needs a value")?;
                args.dialect = match v.as_str() {
                    "db2" => Dialect::Db2,
                    "sybase40" => Dialect::Sybase40,
                    "ingres63" => Dialect::Ingres63,
                    "sql92" => Dialect::Sql92,
                    other => return Err(format!("unknown dialect `{other}`")),
                };
            }
            "--merge" => args.merge = true,
            "--migration" => args.migration = true,
            "--advise" => args.advise = true,
            "--migrate" => args.migrate = true,
            "--report" => args.report = true,
            "--trace" => args.trace = true,
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a value")?;
                args.metrics = Some(match v.as_str() {
                    "text" => MetricsFormat::Text,
                    "json" => MetricsFormat::Json,
                    other => return Err(format!("unknown metrics format `{other}`")),
                });
            }
            "--profile" => {
                let v = it.next().ok_or("--profile needs a value")?;
                args.profile = Some(match v.as_str() {
                    "text" => ProfileFormat::Text,
                    "json" => ProfileFormat::Json,
                    "chrome" => ProfileFormat::Chrome,
                    other => return Err(format!("unknown profile format `{other}`")),
                });
            }
            "--data-dir" => {
                args.data_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--data-dir needs a value")?,
                ));
            }
            "--recover" => args.recover = true,
            "--help" | "-h" => {
                println!(
                    "sdt [--demo <fig1|fig7|fig8i|fig8ii|fig8iii|fig8iv|random[:SEED]>] \
                     [--dialect <db2|sybase40|ingres63|sql92>] [--merge] [--migration] \
                     [--advise] [--migrate] [--report] [--trace] \
                     [--metrics <text|json>] [--profile <text|json|chrome>] \
                     [--data-dir <dir>] [--recover]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// The engine capability profile that matches a DDL dialect.
fn profile_for(dialect: Dialect) -> DbmsProfile {
    match dialect {
        Dialect::Db2 => DbmsProfile::db2(),
        Dialect::Sybase40 => DbmsProfile::sybase40(),
        Dialect::Ingres63 => DbmsProfile::ingres63(),
        Dialect::Sql92 => DbmsProfile::ideal(),
    }
}

/// Deploys `schema` on the in-memory engine and inserts `state` tuple by
/// tuple, retrying rejected tuples until a fixed point (intra-relation
/// references can need a later pass). Returns the database so its metrics
/// shard stays alive until the final snapshot is printed.
fn engine_probe(
    schema: &RelationalSchema,
    state: &DatabaseState,
    dialect: Dialect,
    label: &str,
) -> Option<Database> {
    let mut span = obs::span("sdt.probe").field("schema", label);
    let mut db = Database::new(schema.clone(), profile_for(dialect)).ok()?;
    let mut pending: Vec<(String, Tuple)> = Vec::new();
    for (name, relation) in state.iter() {
        for t in relation.iter() {
            pending.push((name.to_owned(), t.clone()));
        }
    }
    let total = pending.len();
    loop {
        let before = pending.len();
        pending.retain(|(rel, t)| !matches!(db.insert(rel, t.clone()), Ok(true)));
        if pending.is_empty() || pending.len() == before {
            break;
        }
    }
    span.add_field("inserted", total - pending.len());
    span.add_field("unplaceable", pending.len());
    // Delete probe: try removing the first row of every relation. Rows
    // still referenced by others exercise the RESTRICT check path and
    // stay put; the rest exercise the delete path.
    for s in schema.schemes() {
        let Ok(relation) = state.relation_required(s.name()) else {
            continue;
        };
        let Some(t) = relation.iter().next() else {
            continue;
        };
        let Ok(pk_pos) = relation.positions(&s.primary_key()) else {
            continue;
        };
        let key = Tuple::new(pk_pos.iter().map(|i| t.get(*i).clone()).collect::<Vec<_>>());
        let _ = db.delete_by_key(s.name(), &key);
    }
    Some(db)
}

/// Runs a small read workload against a probed database so `--profile` has
/// something to report: a full scan of every relation, a primary-key point
/// lookup of each relation's first row, and one join per inclusion
/// dependency (the access paths merging is meant to shorten).
fn query_probe(db: &Database, schema: &RelationalSchema, state: &DatabaseState) {
    for s in schema.schemes() {
        let _ = db.execute(&QueryPlan::scan(s.name()));
        let Ok(relation) = state.relation_required(s.name()) else {
            continue;
        };
        let Some(t) = relation.iter().next() else {
            continue;
        };
        let pk = s.primary_key();
        let Ok(pk_pos) = relation.positions(&pk) else {
            continue;
        };
        let key = Tuple::new(pk_pos.iter().map(|i| t.get(*i).clone()).collect::<Vec<_>>());
        let _ = db.execute(&QueryPlan::lookup(s.name(), &pk, key));
    }
    for ind in schema.inds() {
        let left: Vec<&str> = ind.lhs_attrs.iter().map(String::as_str).collect();
        let right: Vec<&str> = ind.rhs_attrs.iter().map(String::as_str).collect();
        let plan = QueryPlan::scan(&ind.lhs_rel).join(JoinStep::inner(&ind.rhs_rel, &left, &right));
        let _ = db.execute(&plan);
    }
}

fn demo_schema(name: &str) -> Result<EerSchema, String> {
    Ok(match name {
        "fig1" => figures::fig1_eer(),
        "fig7" => figures::fig7_eer(),
        "fig8i" => figures::fig8_i(),
        "fig8ii" => figures::fig8_ii(),
        "fig8iii" => figures::fig8_iii(),
        "fig8iv" => figures::fig8_iv(),
        other => {
            if let Some(rest) = other.strip_prefix("random") {
                let seed: u64 = rest
                    .strip_prefix(':')
                    .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                    .transpose()?
                    .unwrap_or(0);
                let mut rng = StdRng::seed_from_u64(seed);
                random_eer(&EerSpec::default(), &mut rng)
            } else {
                return Err(format!("unknown demo `{other}`"));
            }
        }
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sdt: {e}");
            std::process::exit(2);
        }
    };
    if args.trace || args.profile == Some(ProfileFormat::Chrome) {
        obs::set_enabled(true);
    }
    let eer = match demo_schema(&args.demo) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("sdt: {e}");
            std::process::exit(2);
        }
    };
    println!("-- SDT: demo `{}`, dialect {}", args.demo, args.dialect);
    println!("-- EER schema:\n{eer}");

    let base = match translate(&eer) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sdt: translation failed: {e}");
            std::process::exit(1);
        }
    };

    let (schema, pipeline) = if args.merge {
        let config = advisor_config_for(args.dialect);
        match Advisor::new(config).greedy_pipeline(&base) {
            Ok((s, p)) => (s, Some(p)),
            Err(e) => {
                eprintln!("sdt: merging failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        (base.clone(), None)
    };

    if let Some(pipeline) = &pipeline {
        println!(
            "-- option (ii): merging applied; {} -> {} relation-schemes, {} join(s) eliminated",
            base.schemes().len(),
            schema.schemes().len(),
            pipeline.joins_eliminated()
        );
        if args.report {
            for step in pipeline.steps() {
                println!("{}", MergeReport::new(step));
            }
        }
    } else {
        println!(
            "-- option (i): one-to-one, {} relation-schemes",
            schema.schemes().len()
        );
    }

    match generate(&schema, args.dialect) {
        Ok(script) => {
            println!("{}", script.render());
            let unsupported = script.unsupported();
            if !unsupported.is_empty() {
                eprintln!(
                    "sdt: warning: {} constraint(s) not maintainable on {}",
                    unsupported.len(),
                    args.dialect
                );
            }
        }
        Err(e) => {
            eprintln!("sdt: DDL generation failed: {e}");
            std::process::exit(1);
        }
    }

    // Durable engine mode: recover an existing data directory (printing
    // the one-line recovery report) or initialize a fresh one seeded with
    // the demo's 1:1 schema and probe state, every write flowing through
    // the write-ahead log so a later `--recover` run has bytes to replay.
    if args.recover && args.data_dir.is_none() {
        eprintln!("sdt: --recover requires --data-dir");
        std::process::exit(2);
    }
    if let Some(dir) = &args.data_dir {
        let durable = EngineConfig::default().durability(Some(DurabilityConfig::new(dir)));
        if relmerge_engine::wal::is_initialized(dir) {
            match Database::recover(durable) {
                Ok((db, report)) => {
                    println!("-- {report}");
                    let check = db.verify_integrity();
                    println!(
                        "-- durable database at {}: {} relation(s), integrity {}",
                        dir.display(),
                        db.schema().schemes().len(),
                        if check.is_clean() {
                            "clean"
                        } else {
                            "VIOLATED"
                        }
                    );
                }
                Err(e) => {
                    eprintln!("sdt: recovery failed: {e}");
                    std::process::exit(1);
                }
            }
        } else if args.recover {
            eprintln!(
                "sdt: --recover: `{}` holds no snapshot to recover from",
                dir.display()
            );
            std::process::exit(1);
        } else {
            match Database::new_with_config(base.clone(), profile_for(args.dialect), durable) {
                Ok(mut db) => {
                    let mut rng = StdRng::seed_from_u64(42);
                    let spec = StateSpec {
                        root_rows: 16,
                        coverage: 0.5,
                    };
                    let mut logged = 0usize;
                    if let Ok(state) = consistent_state(&base, &spec, &mut rng) {
                        let mut pending: Vec<(String, Tuple)> = Vec::new();
                        for (name, relation) in state.iter() {
                            for t in relation.iter() {
                                pending.push((name.to_owned(), t.clone()));
                            }
                        }
                        // Intra-relation references can need a later pass.
                        loop {
                            let before = pending.len();
                            pending.retain(|(rel, t)| {
                                let inserted = matches!(db.insert(rel, t.clone()), Ok(true));
                                logged += usize::from(inserted);
                                !inserted
                            });
                            if pending.is_empty() || pending.len() == before {
                                break;
                            }
                        }
                    }
                    println!(
                        "-- durable database initialized at {}: {} tuple(s) logged",
                        dir.display(),
                        logged
                    );
                }
                Err(e) => {
                    eprintln!("sdt: could not initialize `{}`: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
    }

    if args.migration {
        if let Some(pipeline) = &pipeline {
            for step in pipeline.steps() {
                match forward_migration(step) {
                    Ok(sql) => {
                        println!("-- forward migration for {}:\n{sql}\n", step.merged_name())
                    }
                    Err(e) => eprintln!("sdt: forward migration failed: {e}"),
                }
                match backward_migration(step) {
                    Ok(stmts) => {
                        println!("-- backward migration for {}:", step.merged_name());
                        for s in stmts {
                            println!("{s}\n");
                        }
                    }
                    Err(e) => eprintln!("sdt: backward migration failed: {e}"),
                }
            }
        } else {
            eprintln!("sdt: --migration has no effect without --merge");
        }
    }

    // The live path: deploy the 1:1 schema on the engine, run the probe
    // workload so the profiler accumulates join evidence, and let the
    // advisor rank merges from what the workload actually paid for.
    // `--migrate` then executes the admissible proposals online.
    if args.advise || args.migrate {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = StateSpec {
            root_rows: 16,
            coverage: 0.5,
        };
        match consistent_state(&base, &spec, &mut rng) {
            Ok(state) => match engine_probe(&base, &state, args.dialect, "live") {
                Some(mut db) => {
                    query_probe(&db, &base, &state);
                    let advisor = Advisor::new(advisor_config_for(args.dialect));
                    match advisor.propose_from_profile(&db.profile_snapshot(), &base) {
                        Ok(proposals) => {
                            println!(
                                "-- advisor: {} proposal(s) from the live workload profile",
                                proposals.len()
                            );
                            for (i, p) in proposals.iter().enumerate() {
                                println!(
                                    "--   {}. {:?}: observed cost {}, eliminates {} join(s), \
                                     admissible on {}: {}",
                                    i + 1,
                                    p.members,
                                    p.observed_cost,
                                    p.joins_eliminated,
                                    args.dialect,
                                    p.admissible
                                );
                            }
                        }
                        Err(e) => eprintln!("sdt: advisor failed: {e}"),
                    }
                    if args.migrate {
                        match db.advise_and_migrate(&advisor) {
                            Ok(applied) if applied.is_empty() => println!(
                                "-- live migration: nothing to do (no admissible \
                                 workload-backed merge)"
                            ),
                            Ok(applied) => {
                                for a in &applied {
                                    println!(
                                        "-- live migration: {} <- {:?} ({} row(s) in {} \
                                         chunk(s), dropped {:?})",
                                        a.report.merged_name,
                                        a.report.members,
                                        a.report.rows_migrated,
                                        a.report.chunks_applied,
                                        a.report.dropped
                                    );
                                }
                                println!(
                                    "-- integrity after migration: {}",
                                    if db.verify_integrity().is_clean() {
                                        "clean"
                                    } else {
                                        "VIOLATIONS"
                                    }
                                );
                                println!("-- post-migration schema:\n{}", db.schema());
                            }
                            Err(e) => eprintln!("sdt: live migration failed: {e}"),
                        }
                    }
                }
                None => eprintln!(
                    "sdt: live probe deployment failed under {} (schema not hostable)",
                    args.dialect
                ),
            },
            Err(e) => eprintln!("sdt: probe state generation failed: {e}"),
        }
    }

    // Engine maintenance probe (drives the per-mechanism check metrics).
    // The returned databases hold their metric shards alive until the
    // snapshot below.
    let mut probes: Vec<Database> = Vec::new();
    if args.metrics.is_some() || args.profile.is_some() {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = StateSpec {
            root_rows: 16,
            coverage: 0.5,
        };
        match consistent_state(&base, &spec, &mut rng) {
            Ok(base_state) => {
                if let Some(db) = engine_probe(&base, &base_state, args.dialect, "base") {
                    if args.profile.is_some() {
                        query_probe(&db, &base, &base_state);
                    }
                    probes.push(db);
                }
                if let Some(pipeline) = &pipeline {
                    match pipeline.apply(&base_state) {
                        Ok(merged_state) => {
                            if let Some(db) =
                                engine_probe(&schema, &merged_state, args.dialect, "merged")
                            {
                                if args.profile.is_some() {
                                    query_probe(&db, &schema, &merged_state);
                                }
                                probes.push(db);
                            }
                        }
                        Err(e) => eprintln!("sdt: probe state mapping failed: {e}"),
                    }
                }
            }
            Err(e) => eprintln!("sdt: probe state generation failed: {e}"),
        }
    }

    // A single take drains the event log for both consumers; taking twice
    // would hand the second one an empty trace.
    let events = if args.trace || args.profile == Some(ProfileFormat::Chrome) {
        obs::take_events()
    } else {
        Vec::new()
    };
    if args.trace {
        eprintln!("-- trace:");
        eprint!("{}", obs::render_tree(&events));
    }
    if let Some(format) = args.metrics {
        obs::global()
            .gauge("obs.trace.dropped_spans_pending")
            .set(obs::dropped_spans() as i64);
        obs::global()
            .gauge("obs.trace.overflow_sample_every")
            .set(obs::OVERFLOW_SAMPLE_EVERY as i64);
        let snap = obs::snapshot_all();
        match format {
            MetricsFormat::Text => {
                println!("-- metrics:");
                print!("{}", obs::to_text(&snap));
            }
            MetricsFormat::Json => println!("{}", obs::to_json(&snap)),
        }
    }
    if let Some(format) = args.profile {
        // Probe databases are independent engines with independent
        // profilers; merge their snapshots into one workload view.
        let mut snap = obs::ProfileSnapshot::default();
        for db in &probes {
            snap.merge(&db.profile_snapshot());
        }
        let ranking = obs::report(&snap);
        match format {
            ProfileFormat::Text => {
                println!("-- profile:");
                print!("{}", obs::profile_to_text(&snap));
                println!("-- hot joins:");
                print!("{}", obs::report_to_text(&ranking));
            }
            ProfileFormat::Json => println!(
                "{{\"profile\":{},\"report\":{}}}",
                obs::profile_to_json(&snap),
                obs::report_to_json(&ranking)
            ),
            ProfileFormat::Chrome => println!("{}", obs::chrome_trace(&events)),
        }
    }
    drop(probes);
}
