//! `sdt` — a command-line reimplementation of the paper's Schema
//! Definition and Translation tool \[12\].
//!
//! ```text
//! sdt [--demo <fig1|fig7|fig8i|fig8ii|fig8iii|fig8iv|random[:SEED]>]
//!     [--dialect <db2|sybase40|ingres63|sql92>]
//!     [--merge]            use merging (SDT option ii); default is 1:1
//!     [--migration]        also print data-migration SQL for each merge
//!     [--report]           print merge reports instead of raw schemas
//! ```
//!
//! Example: `sdt --demo fig7 --dialect sybase40 --merge --migration`

use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge_core::{Advisor, MergeReport};
use relmerge_ddl::{
    advisor_config_for, backward_migration, forward_migration, generate, Dialect,
};
use relmerge_eer::{figures, model::EerSchema, translate};
use relmerge_workload::{random_eer, EerSpec};

struct Args {
    demo: String,
    dialect: Dialect,
    merge: bool,
    migration: bool,
    report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        demo: "fig7".to_owned(),
        dialect: Dialect::Sql92,
        merge: false,
        migration: false,
        report: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--demo" => {
                args.demo = it.next().ok_or("--demo needs a value")?;
            }
            "--dialect" => {
                let v = it.next().ok_or("--dialect needs a value")?;
                args.dialect = match v.as_str() {
                    "db2" => Dialect::Db2,
                    "sybase40" => Dialect::Sybase40,
                    "ingres63" => Dialect::Ingres63,
                    "sql92" => Dialect::Sql92,
                    other => return Err(format!("unknown dialect `{other}`")),
                };
            }
            "--merge" => args.merge = true,
            "--migration" => args.migration = true,
            "--report" => args.report = true,
            "--help" | "-h" => {
                println!(
                    "sdt [--demo <fig1|fig7|fig8i|fig8ii|fig8iii|fig8iv|random[:SEED]>] \
                     [--dialect <db2|sybase40|ingres63|sql92>] [--merge] [--migration] [--report]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn demo_schema(name: &str) -> Result<EerSchema, String> {
    Ok(match name {
        "fig1" => figures::fig1_eer(),
        "fig7" => figures::fig7_eer(),
        "fig8i" => figures::fig8_i(),
        "fig8ii" => figures::fig8_ii(),
        "fig8iii" => figures::fig8_iii(),
        "fig8iv" => figures::fig8_iv(),
        other => {
            if let Some(rest) = other.strip_prefix("random") {
                let seed: u64 = rest
                    .strip_prefix(':')
                    .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                    .transpose()?
                    .unwrap_or(0);
                let mut rng = StdRng::seed_from_u64(seed);
                random_eer(&EerSpec::default(), &mut rng)
            } else {
                return Err(format!("unknown demo `{other}`"));
            }
        }
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sdt: {e}");
            std::process::exit(2);
        }
    };
    let eer = match demo_schema(&args.demo) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("sdt: {e}");
            std::process::exit(2);
        }
    };
    println!("-- SDT: demo `{}`, dialect {}", args.demo, args.dialect);
    println!("-- EER schema:\n{eer}");

    let base = match translate(&eer) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sdt: translation failed: {e}");
            std::process::exit(1);
        }
    };

    let (schema, pipeline) = if args.merge {
        let config = advisor_config_for(args.dialect);
        match Advisor::apply_greedy_pipeline(&base, &config) {
            Ok((s, p)) => (s, Some(p)),
            Err(e) => {
                eprintln!("sdt: merging failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        (base.clone(), None)
    };

    if let Some(pipeline) = &pipeline {
        println!(
            "-- option (ii): merging applied; {} -> {} relation-schemes, {} join(s) eliminated",
            base.schemes().len(),
            schema.schemes().len(),
            pipeline.joins_eliminated()
        );
        if args.report {
            for step in pipeline.steps() {
                println!("{}", MergeReport::new(step));
            }
        }
    } else {
        println!(
            "-- option (i): one-to-one, {} relation-schemes",
            schema.schemes().len()
        );
    }

    match generate(&schema, args.dialect) {
        Ok(script) => {
            println!("{}", script.render());
            let unsupported = script.unsupported();
            if !unsupported.is_empty() {
                eprintln!(
                    "sdt: warning: {} constraint(s) not maintainable on {}",
                    unsupported.len(),
                    args.dialect
                );
            }
        }
        Err(e) => {
            eprintln!("sdt: DDL generation failed: {e}");
            std::process::exit(1);
        }
    }

    if args.migration {
        if let Some(pipeline) = &pipeline {
            for step in pipeline.steps() {
                match forward_migration(step) {
                    Ok(sql) => println!("-- forward migration for {}:\n{sql}\n", step.merged_name()),
                    Err(e) => eprintln!("sdt: forward migration failed: {e}"),
                }
                match backward_migration(step) {
                    Ok(stmts) => {
                        println!("-- backward migration for {}:", step.merged_name());
                        for s in stmts {
                            println!("{s}\n");
                        }
                    }
                    Err(e) => eprintln!("sdt: backward migration failed: {e}"),
                }
            }
        } else {
            eprintln!("sdt: --migration has no effect without --merge");
        }
    }
}
