//! A minimal fixed-width table printer for experiment reports.

/// Renders `rows` under `headers` as an aligned plain-text table.
#[must_use]
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        let cells: Vec<&str> = row.iter().map(String::as_str).collect();
        out.push_str(&fmt_row(cells, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::render;

    #[test]
    fn aligns_columns() {
        let t = render(
            &["name", "n"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "10000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha  1"));
        assert!(lines[3].starts_with("b      10000"));
    }
}
