//! Property tests for the substrate: inference soundness (everything an
//! inference engine derives actually holds on data), algebra identities,
//! and constraint-satisfaction coherence.

use proptest::prelude::*;

use relmerge_relational::nullcon::{ne_implies, TotalEqualityClosure};
use relmerge_relational::{
    algebra, Attribute, Domain, Fd, FdSet, NullConstraint, Relation, Tuple, Value,
};

const ATTRS: [&str; 4] = ["A", "B", "C", "D"];

fn header() -> Vec<Attribute> {
    ATTRS
        .iter()
        .map(|a| Attribute::new(*a, Domain::Int))
        .collect()
}

/// Random relation over (A,B,C,D) with small values and nulls.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(
        proptest::array::uniform4(proptest::option::of(0i64..4)),
        0..16,
    )
    .prop_map(|rows| {
        Relation::with_rows(
            header(),
            rows.into_iter().map(|r| {
                Tuple::new(
                    r.into_iter()
                        .map(|v| v.map_or(Value::Null, Value::Int))
                        .collect::<Vec<_>>(),
                )
            }),
        )
        .expect("valid rows")
    })
}

/// A random null-existence constraint over the fixed attributes.
fn ne_strategy() -> impl Strategy<Value = NullConstraint> {
    (
        proptest::sample::subsequence(ATTRS.to_vec(), 0..3),
        proptest::sample::subsequence(ATTRS.to_vec(), 1..4),
    )
        .prop_map(|(lhs, rhs)| NullConstraint::ne("R", &lhs, &rhs))
}

/// A random total-equality constraint (single attribute pair).
fn te_strategy() -> impl Strategy<Value = NullConstraint> {
    (
        proptest::sample::select(ATTRS.to_vec()),
        proptest::sample::select(ATTRS.to_vec()),
    )
        .prop_map(|(a, b)| NullConstraint::te("R", &[a], &[b]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Soundness of null-existence inference: anything `ne_implies`
    /// derives from a constraint set holds on every relation satisfying
    /// the set (the §3 claim that NE axioms mirror FD axioms).
    #[test]
    fn ne_inference_sound(
        constraints in proptest::collection::vec(ne_strategy(), 0..5),
        lhs in proptest::sample::subsequence(ATTRS.to_vec(), 0..3),
        rhs in proptest::sample::subsequence(ATTRS.to_vec(), 1..4),
        r in relation_strategy(),
    ) {
        let satisfies_all = constraints
            .iter()
            .all(|c| c.satisfied_by(&r).expect("check"));
        prop_assume!(satisfies_all);
        if ne_implies(&constraints, "R", &lhs, &rhs) {
            let derived = NullConstraint::ne("R", &lhs, &rhs);
            prop_assert!(
                derived.satisfied_by(&r).expect("check"),
                "derived {derived} fails on a satisfying relation"
            );
        }
    }

    /// Soundness of total-equality inference without non-null knowledge:
    /// only declared pairs, symmetry, and reflexivity may be derived
    /// (unrestricted transitivity is unsound with nulls — see the
    /// `total_equality_transitivity_counterexample` unit test).
    #[test]
    fn te_inference_sound(
        constraints in proptest::collection::vec(te_strategy(), 0..5),
        a in proptest::sample::select(ATTRS.to_vec()),
        b in proptest::sample::select(ATTRS.to_vec()),
        r in relation_strategy(),
    ) {
        let satisfies_all = constraints
            .iter()
            .all(|c| c.satisfied_by(&r).expect("check"));
        prop_assume!(satisfies_all);
        let closure = TotalEqualityClosure::new(&constraints, "R");
        if closure.equivalent(a, b) {
            let derived = NullConstraint::te("R", &[a], &[b]);
            prop_assert!(derived.satisfied_by(&r).expect("check"));
        }
    }

    /// Soundness of total-equality inference *with* non-null pivots: when
    /// the pivot attributes genuinely carry no nulls in the data, the
    /// transitive derivations hold.
    #[test]
    fn te_inference_sound_with_pivots(
        constraints in proptest::collection::vec(te_strategy(), 0..5),
        a in proptest::sample::select(ATTRS.to_vec()),
        b in proptest::sample::select(ATTRS.to_vec()),
        r in relation_strategy(),
    ) {
        let satisfies_all = constraints
            .iter()
            .all(|c| c.satisfied_by(&r).expect("check"));
        prop_assume!(satisfies_all);
        // Declare exactly the attributes that are in fact total in r.
        let pos: Vec<usize> = (0..ATTRS.len()).collect();
        let non_null: std::collections::BTreeSet<String> = ATTRS
            .iter()
            .enumerate()
            .filter(|(i, _)| r.iter().all(|t| !t.get(pos[*i]).is_null()))
            .map(|(_, n)| (*n).to_owned())
            .collect();
        let closure =
            TotalEqualityClosure::new_with_non_null(&constraints, "R", &non_null);
        if closure.equivalent(a, b) {
            let derived = NullConstraint::te("R", &[a], &[b]);
            prop_assert!(derived.satisfied_by(&r).expect("check"));
        }
    }

    /// FD implication is sound on data: if `implies` says X → Y follows
    /// from a set, then any relation satisfying the set satisfies X → Y.
    #[test]
    fn fd_implication_sound(
        fd_pairs in proptest::collection::vec(
            (
                proptest::sample::subsequence(ATTRS.to_vec(), 1..3),
                proptest::sample::subsequence(ATTRS.to_vec(), 1..3),
            ),
            0..4,
        ),
        lhs in proptest::sample::subsequence(ATTRS.to_vec(), 1..3),
        rhs in proptest::sample::subsequence(ATTRS.to_vec(), 1..3),
        r in relation_strategy(),
    ) {
        let mut set = FdSet::new();
        for (l, rr) in &fd_pairs {
            set.push(Fd::new("R", l, rr));
        }
        let satisfies_all = set
            .fds()
            .iter()
            .all(|f| f.satisfied_by(&r).expect("check"));
        prop_assume!(satisfies_all);
        let target = Fd::new("R", &lhs, &rhs);
        if set.implies(&target) {
            prop_assert!(target.satisfied_by(&r).expect("check"));
        }
    }

    /// Null-sync constraints are exactly equivalent to their expansion
    /// into null-existence constraints, on arbitrary data.
    #[test]
    fn ns_expansion_equivalent(
        attrs in proptest::sample::subsequence(ATTRS.to_vec(), 1..4),
        r in relation_strategy(),
    ) {
        let ns = NullConstraint::ns("R", &attrs);
        let direct = ns.satisfied_by(&r).expect("check");
        let expanded = ns
            .expand()
            .iter()
            .all(|c| c.satisfied_by(&r).expect("check"));
        prop_assert_eq!(direct, expanded);
    }

    /// Projection then projection equals one projection (π_{W}(π_{V}(r)) =
    /// π_{W}(r) when W ⊆ V).
    #[test]
    fn projection_composes(r in relation_strategy()) {
        let once = algebra::project(&r, &["A", "B"]).expect("project");
        let twice = algebra::project(
            &algebra::project(&r, &["A", "B", "C"]).expect("project"),
            &["A", "B"],
        )
        .expect("project");
        prop_assert!(once.set_eq(&twice));
    }

    /// Total projection refines projection: π↓ ⊆ π, and equals π exactly
    /// when no projected subtuple contains nulls.
    #[test]
    fn total_projection_refines(r in relation_strategy()) {
        let plain = algebra::project(&r, &["A", "C"]).expect("project");
        let total = algebra::total_project(&r, &["A", "C"]).expect("project");
        for t in total.iter() {
            prop_assert!(plain.contains(t));
            prop_assert!(t.is_total());
        }
        let any_nulls = plain.iter().any(|t| !t.is_total());
        prop_assert_eq!(!any_nulls, total.set_eq(&plain));
    }

    /// Armstrong relations are exact: for random FD sets, a candidate
    /// dependency is satisfied by the Armstrong relation iff it is implied.
    #[test]
    fn armstrong_relations_exact(
        fd_pairs in proptest::collection::vec(
            (
                proptest::sample::subsequence(ATTRS.to_vec(), 1..3),
                proptest::sample::subsequence(ATTRS.to_vec(), 1..3),
            ),
            0..5,
        ),
        lhs in proptest::sample::subsequence(ATTRS.to_vec(), 1..4),
        rhs in proptest::sample::subsequence(ATTRS.to_vec(), 1..4),
    ) {
        let mut set = FdSet::new();
        for (l, r) in &fd_pairs {
            set.push(Fd::new("R", l, r));
        }
        let armstrong =
            relmerge_relational::theory::armstrong_relation(&set, "R", &ATTRS).expect("build");
        let candidate = Fd::new("R", &lhs, &rhs);
        prop_assert_eq!(
            candidate.satisfied_by(&armstrong).expect("check"),
            set.implies(&candidate)
        );
    }

    /// Equi-join is contained in the outer-equi-join, and the outer join's
    /// cardinality is bounded by |inner| + |l| + |r|.
    #[test]
    fn join_containment(l in relation_strategy(), r in relation_strategy()) {
        // Rename r's columns to keep headers disjoint.
        let fresh: Vec<Attribute> = ["E", "F", "G", "H"]
            .iter()
            .map(|a| Attribute::new(*a, Domain::Int))
            .collect();
        let r = algebra::rename(&r, &ATTRS, &fresh).expect("rename");
        let on = [("A", "E")];
        let inner = algebra::equi_join(&l, &r, &on).expect("join");
        let outer = algebra::outer_equi_join(&l, &r, &on).expect("join");
        for t in inner.iter() {
            prop_assert!(outer.contains(t));
        }
        prop_assert!(outer.len() <= inner.len() + l.len() + r.len());
        prop_assert!(outer.len() >= inner.len());
    }
}
