//! Relations: headers plus sets of tuples.

use std::collections::HashSet;
use std::fmt;

use crate::attribute::{self, Attribute};
use crate::error::{Error, Result};
use crate::value::Tuple;

/// A relation: an ordered attribute header and a *set* of tuples.
///
/// Set semantics follow the paper (§2 treats relations as sets); insertion
/// order is preserved for deterministic display and iteration, while a hash
/// index provides O(1) duplicate elimination and membership tests.
#[derive(Debug, Clone)]
pub struct Relation {
    header: Vec<Attribute>,
    rows: Vec<Tuple>,
    index: HashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `header`.
    ///
    /// Attribute names within one header must be distinct.
    pub fn new(header: Vec<Attribute>) -> Result<Self> {
        let mut seen = HashSet::with_capacity(header.len());
        for a in &header {
            if !seen.insert(a.name()) {
                return Err(Error::DuplicateAttribute(a.name().to_owned()));
            }
        }
        Ok(Relation {
            header,
            rows: Vec::new(),
            index: HashSet::new(),
        })
    }

    /// Creates a relation and inserts every tuple of `rows`.
    pub fn with_rows(
        header: Vec<Attribute>,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut r = Relation::new(header)?;
        for t in rows {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The header attributes, in order.
    #[must_use]
    pub fn header(&self) -> &[Attribute] {
        &self.header
    }

    /// Attribute names of the header, in order.
    #[must_use]
    pub fn attr_names(&self) -> Vec<&str> {
        self.header.iter().map(Attribute::name).collect()
    }

    /// Arity (number of attributes).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.header.len()
    }

    /// Number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// The tuples as a slice, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Whether `t` is a member of the relation.
    #[must_use]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.index.contains(t)
    }

    /// Position of attribute `name` in the header.
    #[must_use]
    pub fn position(&self, name: &str) -> Option<usize> {
        attribute::position(&self.header, name)
    }

    /// Positions of each of `names` in the header, failing on unknown names.
    pub fn positions(&self, names: &[&str]) -> Result<Vec<usize>> {
        attribute::positions(&self.header, names, "relation")
    }

    /// Inserts a tuple; returns `Ok(true)` if it was new, `Ok(false)` if the
    /// relation already contained it (set semantics), or an error when the
    /// tuple's arity or value domains do not match the header.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.header.len() {
            return Err(Error::TupleMismatch {
                detail: format!(
                    "arity {} does not match header arity {}",
                    t.arity(),
                    self.header.len()
                ),
            });
        }
        for (v, a) in t.values().iter().zip(&self.header) {
            if !v.fits(a.domain()) {
                return Err(Error::TupleMismatch {
                    detail: format!(
                        "value {v} does not fit domain {} of attribute `{}`",
                        a.domain(),
                        a.name()
                    ),
                });
            }
        }
        if self.index.contains(&t) {
            return Ok(false);
        }
        self.index.insert(t.clone());
        self.rows.push(t);
        Ok(true)
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.index.remove(t) {
            let pos = self
                .rows
                .iter()
                .position(|r| r == t)
                .expect("index and rows are kept in sync");
            self.rows.remove(pos);
            true
        } else {
            false
        }
    }

    /// Two relations are *equal as sets* if their headers match (same names
    /// and domains, same order) and they contain the same tuples.
    #[must_use]
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.header == other.header
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|t| other.index.contains(t))
    }

    /// Set equality up to column order: reorders `other`'s columns to match
    /// `self`'s header by name before comparing. Returns `false` when the
    /// headers are not a permutation of one another.
    #[must_use]
    pub fn set_eq_unordered(&self, other: &Relation) -> bool {
        if self.arity() != other.arity() || self.len() != other.len() {
            return false;
        }
        let Ok(perm) = other.positions(&self.attr_names()) else {
            return false;
        };
        if self
            .header
            .iter()
            .zip(&perm)
            .any(|(a, &i)| a.domain() != other.header[i].domain())
        {
            return false;
        }
        let reordered: HashSet<Tuple> = other.rows.iter().map(|t| t.project(&perm)).collect();
        self.rows.iter().all(|t| reordered.contains(t))
    }

    /// Total size in values (arity × cardinality): the paper's §4.2 argument
    /// that `Remove` "reduces the size of the relations" is measured in
    /// these units.
    #[must_use]
    pub fn value_count(&self) -> usize {
        self.arity() * self.len()
    }

    /// Number of stored values that are null; `Remove` shrinks this.
    #[must_use]
    pub fn null_count(&self) -> usize {
        self.rows
            .iter()
            .map(|t| t.values().iter().filter(|v| v.is_null()).count())
            .sum()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({})",
            self.header
                .iter()
                .map(|a| a.name().to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        writeln!(f, " [{} tuples]", self.rows.len())?;
        for t in &self.rows {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::Value;

    fn header() -> Vec<Attribute> {
        vec![
            Attribute::new("A", Domain::Int),
            Attribute::new("B", Domain::Text),
        ]
    }

    #[test]
    fn rejects_duplicate_header_names() {
        let h = vec![
            Attribute::new("A", Domain::Int),
            Attribute::new("A", Domain::Text),
        ];
        assert!(matches!(
            Relation::new(h),
            Err(Error::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn set_semantics_dedupe() {
        let mut r = Relation::new(header()).unwrap();
        let t = Tuple::new([Value::Int(1), Value::text("x")]);
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t.clone()).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t));
    }

    #[test]
    fn insert_validates_arity_and_domain() {
        let mut r = Relation::new(header()).unwrap();
        assert!(r.insert(Tuple::new([Value::Int(1)])).is_err());
        assert!(r
            .insert(Tuple::new([Value::text("no"), Value::text("x")]))
            .is_err());
        // Nulls fit anywhere.
        assert!(r.insert(Tuple::new([Value::Null, Value::Null])).is_ok());
    }

    #[test]
    fn remove_keeps_index_in_sync() {
        let mut r = Relation::new(header()).unwrap();
        let t1 = Tuple::new([Value::Int(1), Value::text("x")]);
        let t2 = Tuple::new([Value::Int(2), Value::text("y")]);
        r.insert(t1.clone()).unwrap();
        r.insert(t2.clone()).unwrap();
        assert!(r.remove(&t1));
        assert!(!r.remove(&t1));
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&t1));
        assert!(r.contains(&t2));
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let t1 = Tuple::new([Value::Int(1), Value::text("x")]);
        let t2 = Tuple::new([Value::Int(2), Value::text("y")]);
        let r1 = Relation::with_rows(header(), [t1.clone(), t2.clone()]).unwrap();
        let r2 = Relation::with_rows(header(), [t2, t1]).unwrap();
        assert!(r1.set_eq(&r2));
        assert_eq!(r1, r2);
    }

    #[test]
    fn set_eq_unordered_permutes_columns() {
        let r1 =
            Relation::with_rows(header(), [Tuple::new([Value::Int(1), Value::text("x")])]).unwrap();
        let flipped = vec![
            Attribute::new("B", Domain::Text),
            Attribute::new("A", Domain::Int),
        ];
        let r2 =
            Relation::with_rows(flipped, [Tuple::new([Value::text("x"), Value::Int(1)])]).unwrap();
        assert!(r1.set_eq_unordered(&r2));
        assert!(!r1.set_eq(&r2));
    }

    #[test]
    fn size_metrics() {
        let mut r = Relation::new(header()).unwrap();
        r.insert(Tuple::new([Value::Int(1), Value::Null])).unwrap();
        r.insert(Tuple::new([Value::Int(2), Value::text("y")]))
            .unwrap();
        assert_eq!(r.value_count(), 4);
        assert_eq!(r.null_count(), 1);
    }
}
