//! Whole relational schemas `RS = (R, F ∪ I ∪ N)`.

use std::collections::HashSet;
use std::fmt;

use crate::error::{Error, Result};
use crate::fd::{Fd, FdSet};
use crate::ind::InclusionDep;
use crate::nullcon::NullConstraint;
use crate::scheme::RelationScheme;

/// A relational schema in the paper's sense: a set `R` of relation-schemes
/// together with key dependencies `F` (implicit in the schemes' declared
/// keys, plus any explicit extras), key-based inclusion dependencies `I`,
/// and null constraints `N`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationalSchema {
    schemes: Vec<RelationScheme>,
    inds: Vec<InclusionDep>,
    null_constraints: Vec<NullConstraint>,
    extra_fds: Vec<Fd>,
}

impl RelationalSchema {
    /// An empty schema.
    #[must_use]
    pub fn new() -> Self {
        RelationalSchema::default()
    }

    /// Adds a relation-scheme. Scheme names must be unique; attribute names
    /// are unique *within* a scheme by construction. Global attribute
    /// uniqueness across schemes is Definition 4.1's assumption and is
    /// checked by `Merge::plan` for the schemes being merged, not here —
    /// ordinary relational schemas (the paper's Figure 1) may reuse
    /// attribute names across schemes.
    pub fn add_scheme(&mut self, scheme: RelationScheme) -> Result<()> {
        if self.schemes.iter().any(|s| s.name() == scheme.name()) {
            return Err(Error::DuplicateScheme(scheme.name().to_owned()));
        }
        self.schemes.push(scheme);
        Ok(())
    }

    /// Adds an inclusion dependency, validating it against the schemes.
    pub fn add_ind(&mut self, ind: InclusionDep) -> Result<()> {
        let lhs = self.scheme_required(&ind.lhs_rel)?;
        let rhs = self.scheme_required(&ind.rhs_rel)?;
        ind.validate(lhs, rhs)?;
        if !self.inds.contains(&ind) {
            self.inds.push(ind);
        }
        Ok(())
    }

    /// Adds a null constraint, validating it against its scheme.
    pub fn add_null_constraint(&mut self, c: NullConstraint) -> Result<()> {
        let scheme = self.scheme_required(c.rel())?;
        c.validate(scheme)?;
        if !self.null_constraints.contains(&c) {
            self.null_constraints.push(c);
        }
        Ok(())
    }

    /// Adds an explicit (non-key) functional dependency. The paper's
    /// schemas never need this — `F` consists of key dependencies — but the
    /// substrate supports it for baseline comparisons.
    pub fn add_fd(&mut self, fd: Fd) -> Result<()> {
        let scheme = self.scheme_required(&fd.rel)?;
        fd.validate(scheme)?;
        if !self.extra_fds.contains(&fd) {
            self.extra_fds.push(fd);
        }
        Ok(())
    }

    /// The relation-schemes, in declaration order.
    #[must_use]
    pub fn schemes(&self) -> &[RelationScheme] {
        &self.schemes
    }

    /// The inclusion dependencies `I`.
    #[must_use]
    pub fn inds(&self) -> &[InclusionDep] {
        &self.inds
    }

    /// The null constraints `N`.
    #[must_use]
    pub fn null_constraints(&self) -> &[NullConstraint] {
        &self.null_constraints
    }

    /// The explicit non-key functional dependencies (usually empty).
    #[must_use]
    pub fn extra_fds(&self) -> &[Fd] {
        &self.extra_fds
    }

    /// Looks up a scheme by name.
    #[must_use]
    pub fn scheme(&self, name: &str) -> Option<&RelationScheme> {
        self.schemes.iter().find(|s| s.name() == name)
    }

    /// Looks up a scheme by name, failing with [`Error::UnknownScheme`].
    pub fn scheme_required(&self, name: &str) -> Result<&RelationScheme> {
        self.scheme(name)
            .ok_or_else(|| Error::UnknownScheme(name.to_owned()))
    }

    /// Which scheme declares attribute `attr`, if any.
    #[must_use]
    pub fn scheme_of_attr(&self, attr: &str) -> Option<&RelationScheme> {
        self.schemes.iter().find(|s| s.has_attr(attr))
    }

    /// The key-dependency set `F`: `Ri : Ki → Xi` for every candidate key,
    /// plus any explicit extras.
    #[must_use]
    pub fn fd_set(&self) -> FdSet {
        let mut set = FdSet::from_schemes(&self.schemes);
        for fd in &self.extra_fds {
            set.push(fd.clone());
        }
        set
    }

    /// `F` augmented with the functional dependencies induced by
    /// total-equality constraints (`Y =⊥ Z` contributes `Y → Z` and
    /// `Z → Y` pairwise). This is the dependency set Proposition 4.1(ii)
    /// reasons over when arguing that merged schemes stay in BCNF.
    #[must_use]
    pub fn fd_set_with_equalities(&self) -> FdSet {
        let mut set = self.fd_set();
        for c in &self.null_constraints {
            if let NullConstraint::TotalEquality { rel, lhs, rhs } = c {
                set.push(Fd {
                    rel: rel.clone(),
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                });
                set.push(Fd {
                    rel: rel.clone(),
                    lhs: rhs.clone(),
                    rhs: lhs.clone(),
                });
            }
        }
        set
    }

    /// Whether every relation-scheme is in BCNF under
    /// [`Self::fd_set_with_equalities`].
    #[must_use]
    pub fn is_bcnf(&self) -> bool {
        let fds = self.fd_set_with_equalities();
        self.schemes.iter().all(|s| fds.is_bcnf(s))
    }

    /// Whether every inclusion dependency is key-based (a referential
    /// integrity constraint) — the §5.1 requirement for DBMSs like DB2.
    #[must_use]
    pub fn key_based_inds_only(&self) -> bool {
        self.inds.iter().all(|ind| {
            self.scheme(&ind.rhs_rel)
                .is_some_and(|rhs| ind.is_key_based(rhs))
        })
    }

    /// Whether every null constraint is a nulls-not-allowed constraint —
    /// the §5.1 requirement for purely declarative maintenance.
    #[must_use]
    pub fn nna_only(&self) -> bool {
        self.null_constraints.iter().all(NullConstraint::is_nna)
    }

    /// Whether attribute `attr` of scheme `rel` is forced non-null by the
    /// declared nulls-not-allowed constraints (used by display code to mark
    /// nullable attributes like the figures' `*`).
    #[must_use]
    pub fn attr_not_null(&self, rel: &str, attr: &str) -> bool {
        self.null_constraints.iter().any(|c| match c {
            NullConstraint::NullExistence { rel: r, lhs, rhs } => {
                r == rel && lhs.is_empty() && rhs.iter().any(|a| a == attr)
            }
            _ => false,
        })
    }

    /// Full structural validation: unique scheme/attribute names and
    /// well-formed dependencies. Individual `add_*` calls validate
    /// incrementally; this re-checks the whole schema (useful after manual
    /// construction in tests and generators).
    pub fn validate(&self) -> Result<()> {
        let mut scheme_names = HashSet::new();
        for s in &self.schemes {
            if !scheme_names.insert(s.name()) {
                return Err(Error::DuplicateScheme(s.name().to_owned()));
            }
        }
        for ind in &self.inds {
            let lhs = self.scheme_required(&ind.lhs_rel)?;
            let rhs = self.scheme_required(&ind.rhs_rel)?;
            ind.validate(lhs, rhs)?;
        }
        for c in &self.null_constraints {
            c.validate(self.scheme_required(c.rel())?)?;
        }
        for fd in &self.extra_fds {
            fd.validate(self.scheme_required(&fd.rel)?)?;
        }
        Ok(())
    }

    /// Replaces the schema's constraint sets wholesale (used by the
    /// `Merge`/`Remove` procedures, which compute new `F′ ∪ I′ ∪ N′` sets).
    #[must_use]
    pub fn with_parts(
        schemes: Vec<RelationScheme>,
        inds: Vec<InclusionDep>,
        null_constraints: Vec<NullConstraint>,
    ) -> Self {
        RelationalSchema {
            schemes,
            inds,
            null_constraints,
            extra_fds: Vec::new(),
        }
    }

    /// Total number of joins a query touching all of `schemes` must perform
    /// in this schema (|schemes ∩ R| − 1 when positive) — the quantity
    /// merging exists to reduce (§1).
    #[must_use]
    pub fn joins_needed(&self, touched: &[&str]) -> usize {
        let present = touched.iter().filter(|n| self.scheme(n).is_some()).count();
        present.saturating_sub(1)
    }
}

impl fmt::Display for RelationalSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation-Schemes:")?;
        for s in &self.schemes {
            writeln!(f, "  {s}")?;
        }
        if !self.inds.is_empty() {
            writeln!(f, "Inclusion Dependencies:")?;
            for ind in &self.inds {
                writeln!(f, "  {ind}")?;
            }
        }
        if !self.null_constraints.is_empty() {
            writeln!(f, "Null Constraints:")?;
            for c in &self.null_constraints {
                writeln!(f, "  {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;

    fn scheme(name: &str, attrs: &[&str], key: &[&str]) -> RelationScheme {
        RelationScheme::new(
            name,
            attrs
                .iter()
                .map(|a| Attribute::new(*a, Domain::Int))
                .collect(),
            key,
        )
        .unwrap()
    }

    fn two_schemes() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(scheme("A", &["A.K", "A.V"], &["A.K"]))
            .unwrap();
        rs.add_scheme(scheme("B", &["B.K"], &["B.K"])).unwrap();
        rs
    }

    #[test]
    fn scheme_names_unique_attr_names_reusable() {
        let mut rs = two_schemes();
        assert!(matches!(
            rs.add_scheme(scheme("A", &["X"], &["X"])),
            Err(Error::DuplicateScheme(_))
        ));
        // Attribute names may repeat across schemes (the paper's Figure 1);
        // Merge::plan enforces Definition 4.1's uniqueness assumption on the
        // schemes actually being merged.
        rs.add_scheme(scheme("C", &["A.K"], &["A.K"])).unwrap();
        rs.validate().unwrap();
    }

    #[test]
    fn ind_and_constraint_validation() {
        let mut rs = two_schemes();
        rs.add_ind(InclusionDep::new("A", &["A.K"], "B", &["B.K"]))
            .unwrap();
        assert!(rs
            .add_ind(InclusionDep::new("A", &["NOPE"], "B", &["B.K"]))
            .is_err());
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        assert!(rs
            .add_null_constraint(NullConstraint::nna("A", &["NOPE"]))
            .is_err());
        assert!(rs
            .add_null_constraint(NullConstraint::nna("NOPE", &["A.K"]))
            .is_err());
        rs.validate().unwrap();
    }

    #[test]
    fn key_based_classification() {
        let mut rs = two_schemes();
        rs.add_ind(InclusionDep::new("A", &["A.K"], "B", &["B.K"]))
            .unwrap();
        assert!(rs.key_based_inds_only());
        rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.V"]))
            .unwrap();
        assert!(!rs.key_based_inds_only());
    }

    #[test]
    fn nna_only_classification() {
        let mut rs = two_schemes();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        assert!(rs.nna_only());
        rs.add_null_constraint(NullConstraint::ne("A", &["A.V"], &["A.K"]))
            .unwrap();
        assert!(!rs.nna_only());
    }

    #[test]
    fn attr_not_null_lookup() {
        let mut rs = two_schemes();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K"]))
            .unwrap();
        assert!(rs.attr_not_null("A", "A.K"));
        assert!(!rs.attr_not_null("A", "A.V"));
        assert!(!rs.attr_not_null("B", "B.K"));
    }

    #[test]
    fn fd_sets_and_bcnf() {
        let mut rs = two_schemes();
        assert!(rs.is_bcnf());
        // Total equality A.K =# A.V induces FDs both ways; A.V becomes a
        // candidate key and the scheme stays BCNF.
        rs.add_null_constraint(NullConstraint::te("A", &["A.K"], &["A.V"]))
            .unwrap();
        assert!(rs.is_bcnf());
        let fds = rs.fd_set_with_equalities();
        let scheme_a = rs.scheme("A").unwrap();
        assert!(fds.is_superkey(scheme_a, &["A.V"]));
        // A genuine non-key FD breaks BCNF. Use a 3-attribute scheme.
        let mut rs2 = RelationalSchema::new();
        rs2.add_scheme(scheme("R", &["K", "B", "C"], &["K"]))
            .unwrap();
        rs2.add_fd(Fd::new("R", &["B"], &["C"])).unwrap();
        assert!(!rs2.is_bcnf());
    }

    #[test]
    fn joins_needed_counts() {
        let rs = two_schemes();
        assert_eq!(rs.joins_needed(&["A", "B"]), 1);
        assert_eq!(rs.joins_needed(&["A"]), 0);
        assert_eq!(rs.joins_needed(&["A", "MISSING"]), 0);
    }
}
