//! Paper-style figure rendering.
//!
//! The figures of the paper present schemas as numbered lists of
//! relation-schemes (keys underlined — rendered here as `_NAME_`),
//! inclusion dependencies, and null constraints, with nullable attributes
//! starred (`DATE*`, Figure 1(iii)) and an abbreviation footer. This module
//! renders a [`RelationalSchema`] in that style, so `reproduce` output can
//! be compared side by side with the paper.

use std::fmt::Write as _;

use crate::schema::RelationalSchema;

/// Renders `schema` in the paper's figure layout.
#[must_use]
pub fn render_figure(schema: &RelationalSchema, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "Relation-Schemes (underlined keys; * = nulls allowed)");
    for (i, s) in schema.schemes().iter().enumerate() {
        let pk: Vec<&str> = s.primary_key();
        let parts: Vec<String> = s
            .attrs()
            .iter()
            .map(|a| {
                let name = a.name();
                let nullable = !schema.attr_not_null(s.name(), name);
                let starred = if nullable && !pk.contains(&name) {
                    format!("{name}*")
                } else {
                    name.to_owned()
                };
                if pk.contains(&name) {
                    format!("_{starred}_")
                } else {
                    starred
                }
            })
            .collect();
        let _ = writeln!(out, "({}) {} ({})", i + 1, s.name(), parts.join(", "));
    }
    if !schema.inds().is_empty() {
        let _ = writeln!(out, "Inclusion Dependencies");
        for (i, ind) in schema.inds().iter().enumerate() {
            let _ = writeln!(out, "({}) {}", i + 1, ind);
        }
    }
    if !schema.null_constraints().is_empty() {
        let _ = writeln!(out, "Null Constraints");
        for (i, c) in schema.null_constraints().iter().enumerate() {
            let _ = writeln!(out, "({}) {}", i + 1, c);
        }
    }
    // Abbreviation footer: the distinct first components of dotted
    // attribute names, mapped to the scheme that declares them.
    let mut abbrevs: Vec<(String, String)> = Vec::new();
    for s in schema.schemes() {
        for a in s.attrs() {
            if let Some((prefix, _)) = a.name().split_once('.') {
                let entry = (prefix.to_owned(), s.name().to_owned());
                if !abbrevs.contains(&entry)
                    && !abbrevs.iter().any(|(p, _)| p == prefix)
                    && s.name().starts_with(prefix.chars().next().unwrap_or('_'))
                {
                    abbrevs.push(entry);
                }
            }
        }
    }
    if !abbrevs.is_empty() {
        abbrevs.sort();
        let pairs: Vec<String> = abbrevs
            .into_iter()
            .map(|(p, s)| format!("{p}={s}"))
            .collect();
        let _ = writeln!(out, "Abbreviations: {}", pairs.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;
    use crate::ind::InclusionDep;
    use crate::nullcon::NullConstraint;
    use crate::scheme::RelationScheme;

    fn schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new(
                "WORKS",
                vec![
                    Attribute::new("W.SSN", Domain::Int),
                    Attribute::new("W.NR", Domain::Int),
                    Attribute::new("W.DATE", Domain::Date),
                ],
                &["W.SSN"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "PROJECT",
                vec![Attribute::new("P.NR", Domain::Int)],
                &["P.NR"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("WORKS", &["W.SSN"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("PROJECT", &["P.NR"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("WORKS", &["W.NR"], "PROJECT", &["P.NR"]))
            .unwrap();
        rs
    }

    #[test]
    fn figure_rendering_shape() {
        let text = render_figure(&schema(), "Fig. X. Test Schema.");
        assert!(text.starts_with("Fig. X. Test Schema.\n"));
        // Keys underlined, nullable non-key attrs starred.
        assert!(
            text.contains("(1) WORKS (_W.SSN_, W.NR*, W.DATE*)"),
            "{text}"
        );
        assert!(text.contains("(2) PROJECT (_P.NR_)"));
        // Numbered dependency and constraint sections.
        assert!(text.contains("Inclusion Dependencies\n(1) WORKS [W.NR] <= PROJECT [P.NR]"));
        assert!(text.contains("Null Constraints\n(1) WORKS: 0 E-> W.SSN"));
        // Abbreviation footer.
        assert!(text.contains("Abbreviations:"));
        assert!(text.contains("P=PROJECT"));
        assert!(text.contains("W=WORKS"));
    }

    #[test]
    fn empty_sections_omitted() {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new("R", vec![Attribute::new("K", Domain::Int)], &["K"]).unwrap(),
        )
        .unwrap();
        let text = render_figure(&rs, "t");
        assert!(!text.contains("Inclusion Dependencies"));
        assert!(!text.contains("Null Constraints"));
        assert!(!text.contains("Abbreviations"));
    }
}
