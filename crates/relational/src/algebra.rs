//! The relational algebra of the paper's Section 2.
//!
//! All operators are pure functions over [`Relation`]s. The outer-equi-join
//! implements the three-part union `r1 ∪ r2 ∪ r3` literally, with **both**
//! join columns retained in the result — the redundancy this creates is what
//! the paper's `Remove` procedure (Definition 4.3) later eliminates.

use std::collections::HashMap;

use crate::attribute::Attribute;
use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::value::Tuple;

/// Projection `π_W(r)`: the set of subtuples of `r` over the attributes `W`
/// (named in `names`, in the requested output order). Duplicates are
/// eliminated (set semantics).
pub fn project(r: &Relation, names: &[&str]) -> Result<Relation> {
    let pos = r.positions(names)?;
    let header: Vec<Attribute> = pos.iter().map(|&i| r.header()[i].clone()).collect();
    let mut out = Relation::new(header)?;
    for t in r.iter() {
        out.insert(t.project(&pos))?;
    }
    Ok(out)
}

/// Total projection `π↓_W(r)`: the subset of **total** tuples of `π_W(r)`
/// (paper §2). This is the reconstruction operator of the `Merge` state
/// mapping η′.
pub fn total_project(r: &Relation, names: &[&str]) -> Result<Relation> {
    let pos = r.positions(names)?;
    let header: Vec<Attribute> = pos.iter().map(|&i| r.header()[i].clone()).collect();
    let mut out = Relation::new(header)?;
    for t in r.iter() {
        if t.is_total_at(&pos) {
            out.insert(t.project(&pos))?;
        }
    }
    Ok(out)
}

/// Renaming `rename(r; W → Y)`: replaces the attributes named in `from` by
/// the compatible attributes `to` (positionally), leaving all values
/// untouched.
pub fn rename(r: &Relation, from: &[&str], to: &[Attribute]) -> Result<Relation> {
    if from.len() != to.len() {
        return Err(Error::IncompatibleAttributes {
            detail: format!("rename arity mismatch: {} vs {}", from.len(), to.len()),
        });
    }
    let pos = r.positions(from)?;
    let mut header = r.header().to_vec();
    for (&i, new_attr) in pos.iter().zip(to) {
        if !header[i].compatible(new_attr) {
            return Err(Error::IncompatibleAttributes {
                detail: format!(
                    "cannot rename `{}` ({}) to `{}` ({})",
                    header[i].name(),
                    header[i].domain(),
                    new_attr.name(),
                    new_attr.domain()
                ),
            });
        }
        header[i] = new_attr.clone();
    }
    Relation::with_rows(header, r.iter().cloned())
}

/// Union of two relations over identical headers.
pub fn union(r1: &Relation, r2: &Relation) -> Result<Relation> {
    if r1.header() != r2.header() {
        return Err(Error::IncompatibleAttributes {
            detail: "union requires identical headers".to_owned(),
        });
    }
    let mut out = r1.clone();
    for t in r2.iter() {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// Set difference `r1 − r2` over identical headers.
pub fn difference(r1: &Relation, r2: &Relation) -> Result<Relation> {
    if r1.header() != r2.header() {
        return Err(Error::IncompatibleAttributes {
            detail: "difference requires identical headers".to_owned(),
        });
    }
    let mut out = Relation::new(r1.header().to_vec())?;
    for t in r1.iter() {
        if !r2.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Selection keeping tuples where the subtuple over `names` equals `key`.
pub fn select_eq(r: &Relation, names: &[&str], key: &Tuple) -> Result<Relation> {
    let pos = r.positions(names)?;
    let mut out = Relation::new(r.header().to_vec())?;
    for t in r.iter() {
        if &t.project(&pos) == key {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

fn joined_header(r1: &Relation, r2: &Relation) -> Result<Vec<Attribute>> {
    let mut header = r1.header().to_vec();
    for a in r2.header() {
        if header.iter().any(|h| h.name() == a.name()) {
            return Err(Error::DuplicateAttribute(a.name().to_owned()));
        }
        header.push(a.clone());
    }
    Ok(header)
}

fn check_join_condition(
    r1: &Relation,
    r2: &Relation,
    on: &[(&str, &str)],
) -> Result<(Vec<usize>, Vec<usize>)> {
    let left: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
    let right: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
    let lpos = r1.positions(&left)?;
    let rpos = r2.positions(&right)?;
    for (&l, &r) in lpos.iter().zip(&rpos) {
        let (la, ra) = (&r1.header()[l], &r2.header()[r]);
        if !la.compatible(ra) {
            return Err(Error::IncompatibleAttributes {
                detail: format!(
                    "join condition `{}` = `{}` over incompatible domains {} / {}",
                    la.name(),
                    ra.name(),
                    la.domain(),
                    ra.domain()
                ),
            });
        }
    }
    Ok((lpos, rpos))
}

/// Equi-join `r1 ⋈_{Y=Z} r2` (paper §2): tuples `t` with `t[X₁] ∈ r1`,
/// `t[X₂] ∈ r2` and `t[Y] = t[Z]`. Both `Y` and `Z` columns are retained;
/// the attribute names of the two relations must be disjoint.
///
/// Implemented as a hash join on the `Y`/`Z` subtuples; null join keys are
/// treated as values (`null = null`), consistent with the paper's
/// all-nulls-identical model.
pub fn equi_join(r1: &Relation, r2: &Relation, on: &[(&str, &str)]) -> Result<Relation> {
    let (lpos, rpos) = check_join_condition(r1, r2, on)?;
    let header = joined_header(r1, r2)?;
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for t in r2.iter() {
        table.entry(t.project(&rpos)).or_default().push(t);
    }
    let mut out = Relation::new(header)?;
    for t in r1.iter() {
        if let Some(matches) = table.get(&t.project(&lpos)) {
            for m in matches {
                out.insert(t.concat(m))?;
            }
        }
    }
    Ok(out)
}

/// Outer-equi-join `r1 ⟗_{Y=Z} r2` (paper §2): the union of
///
/// 1. `r1 ⋈_{Y=Z} r2`,
/// 2. `null_{k₁} ++ t` for each `t ∈ r2` with no `Y`-partner in `r1`, and
/// 3. `t ++ null_{k₂}` for each `t ∈ r1` with no `Z`-partner in `r2`
///
/// (a *full* outer join in modern terms). This is the engine of the `Merge`
/// state mapping η (Definition 4.1).
pub fn outer_equi_join(r1: &Relation, r2: &Relation, on: &[(&str, &str)]) -> Result<Relation> {
    let (lpos, rpos) = check_join_condition(r1, r2, on)?;
    let header = joined_header(r1, r2)?;
    let mut table: HashMap<Tuple, (Vec<&Tuple>, bool)> = HashMap::new();
    for t in r2.iter() {
        table.entry(t.project(&rpos)).or_default().0.push(t);
    }
    let mut out = Relation::new(header)?;
    let left_nulls = Tuple::nulls(r1.arity());
    let right_nulls = Tuple::nulls(r2.arity());
    for t in r1.iter() {
        match table.get_mut(&t.project(&lpos)) {
            Some((matches, hit)) => {
                *hit = true;
                for m in matches.iter() {
                    out.insert(t.concat(m))?;
                }
            }
            None => {
                // r3: left tuple with no partner.
                out.insert(t.concat(&right_nulls))?;
            }
        }
    }
    for (matches, hit) in table.values() {
        if !hit {
            // r2: right tuples with no partner.
            for m in matches {
                out.insert(left_nulls.concat(m))?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::value::Value;

    fn attr(name: &str, d: Domain) -> Attribute {
        Attribute::new(name, d)
    }

    fn rel(names: &[(&str, Domain)], rows: &[&[Value]]) -> Relation {
        let header = names.iter().map(|(n, d)| attr(n, *d)).collect();
        Relation::with_rows(header, rows.iter().map(|r| Tuple::new(r.to_vec()))).unwrap()
    }

    fn teach() -> Relation {
        // TEACH(T.CN, T.FN)
        rel(
            &[("T.CN", Domain::Int), ("T.FN", Domain::Text)],
            &[
                &[Value::Int(1), Value::text("curie")],
                &[Value::Int(2), Value::text("noether")],
            ],
        )
    }

    fn offer() -> Relation {
        // OFFER(O.CN, O.DN)
        rel(
            &[("O.CN", Domain::Int), ("O.DN", Domain::Text)],
            &[
                &[Value::Int(1), Value::text("physics")],
                &[Value::Int(3), Value::text("math")],
            ],
        )
    }

    #[test]
    fn project_dedupes() {
        let r = rel(
            &[("A", Domain::Int), ("B", Domain::Int)],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(1), Value::Int(20)],
            ],
        );
        let p = project(&r, &["A"]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.attr_names(), ["A"]);
    }

    #[test]
    fn total_project_filters_partial_tuples() {
        let r = rel(
            &[("A", Domain::Int), ("B", Domain::Int)],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Null],
                &[Value::Null, Value::Int(30)],
            ],
        );
        let p = total_project(&r, &["A", "B"]).unwrap();
        assert_eq!(p.len(), 1);
        let q = total_project(&r, &["B"]).unwrap();
        assert_eq!(q.len(), 2); // 10 and 30
        assert!(q.contains(&Tuple::new([Value::Int(30)])));
    }

    #[test]
    fn rename_changes_header_only() {
        let r = teach();
        let renamed = rename(&r, &["T.CN"], &[attr("CN", Domain::Int)]).unwrap();
        assert_eq!(renamed.attr_names(), ["CN", "T.FN"]);
        assert_eq!(renamed.len(), 2);
        assert!(renamed.contains(&Tuple::new([Value::Int(1), Value::text("curie")])));
    }

    #[test]
    fn rename_rejects_incompatible_target() {
        let r = teach();
        assert!(rename(&r, &["T.CN"], &[attr("CN", Domain::Text)]).is_err());
    }

    #[test]
    fn union_and_difference() {
        let a = rel(&[("A", Domain::Int)], &[&[Value::Int(1)], &[Value::Int(2)]]);
        let b = rel(&[("A", Domain::Int)], &[&[Value::Int(2)], &[Value::Int(3)]]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 3);
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&Tuple::new([Value::Int(1)])));
    }

    #[test]
    fn union_requires_identical_headers() {
        let a = rel(&[("A", Domain::Int)], &[]);
        let b = rel(&[("B", Domain::Int)], &[]);
        assert!(union(&a, &b).is_err());
    }

    #[test]
    fn equi_join_keeps_both_columns() {
        let j = equi_join(&teach(), &offer(), &[("T.CN", "O.CN")]).unwrap();
        assert_eq!(j.attr_names(), ["T.CN", "T.FN", "O.CN", "O.DN"]);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Tuple::new([
            Value::Int(1),
            Value::text("curie"),
            Value::Int(1),
            Value::text("physics"),
        ])));
    }

    #[test]
    fn equi_join_rejects_name_clash() {
        let a = rel(&[("A", Domain::Int)], &[]);
        let b = rel(&[("A", Domain::Int)], &[]);
        assert!(equi_join(&a, &b, &[("A", "A")]).is_err());
    }

    #[test]
    fn outer_equi_join_has_all_three_parts() {
        let j = outer_equi_join(&teach(), &offer(), &[("T.CN", "O.CN")]).unwrap();
        assert_eq!(j.len(), 3);
        // r1: the matched tuple.
        assert!(j.contains(&Tuple::new([
            Value::Int(1),
            Value::text("curie"),
            Value::Int(1),
            Value::text("physics"),
        ])));
        // r3: TEACH tuple 2 unmatched, right padded with nulls.
        assert!(j.contains(&Tuple::new([
            Value::Int(2),
            Value::text("noether"),
            Value::Null,
            Value::Null,
        ])));
        // r2: OFFER tuple 3 unmatched, left padded with nulls.
        assert!(j.contains(&Tuple::new([
            Value::Null,
            Value::Null,
            Value::Int(3),
            Value::text("math"),
        ])));
    }

    #[test]
    fn outer_join_reconstructs_by_total_projection() {
        // The round-trip the Merge mapping relies on: total projections of the
        // outer join give back the operands (here key values are unique).
        let j = outer_equi_join(&teach(), &offer(), &[("T.CN", "O.CN")]).unwrap();
        let t = total_project(&j, &["T.CN", "T.FN"]).unwrap();
        assert!(t.set_eq(&teach()));
        let o = total_project(&j, &["O.CN", "O.DN"]).unwrap();
        assert!(o.set_eq(&offer()));
    }

    #[test]
    fn select_eq_filters() {
        let r = teach();
        let s = select_eq(&r, &["T.CN"], &Tuple::new([Value::Int(2)])).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Tuple::new([Value::Int(2), Value::text("noether")])));
    }

    #[test]
    fn outer_join_with_empty_sides() {
        let empty_t = rel(&[("T.CN", Domain::Int), ("T.FN", Domain::Text)], &[]);
        let j = outer_equi_join(&empty_t, &offer(), &[("T.CN", "O.CN")]).unwrap();
        assert_eq!(j.len(), 2);
        for t in j.iter() {
            assert!(t.is_all_null_at(&[0, 1]));
        }
        let j2 = outer_equi_join(
            &teach(),
            &rel(&[("O.CN", Domain::Int), ("O.DN", Domain::Text)], &[]),
            &[("T.CN", "O.CN")],
        )
        .unwrap();
        assert_eq!(j2.len(), 2);
        for t in j2.iter() {
            assert!(t.is_all_null_at(&[2, 3]));
        }
    }
}
