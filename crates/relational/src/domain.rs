//! Attribute domains.

use std::fmt;

/// The domain (type) an attribute draws its non-null values from.
///
/// Section 2 of the paper: *"Every attribute is associated with a domain"*,
/// and two attributes are **compatible** iff they are associated with the
/// same domain. Domains are deliberately coarse — the merging theory only
/// ever inspects equality of domains, never their internal structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// 64-bit signed integers (course numbers, SSNs, …).
    Int,
    /// Unicode text (names, department names, …).
    Text,
    /// Booleans.
    Bool,
    /// Dates, represented as days since an arbitrary epoch.
    Date,
}

impl Domain {
    /// Whether two attributes over these domains are compatible
    /// (paper §2: identical domains).
    #[must_use]
    pub fn compatible(self, other: Domain) -> bool {
        self == other
    }

    /// A short SQL-ish spelling used by the DDL generator and in display
    /// output.
    #[must_use]
    pub fn sql_name(self) -> &'static str {
        match self {
            Domain::Int => "INTEGER",
            Domain::Text => "VARCHAR(64)",
            Domain::Bool => "SMALLINT",
            Domain::Date => "DATE",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Domain::Int => "int",
            Domain::Text => "text",
            Domain::Bool => "bool",
            Domain::Date => "date",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_is_domain_equality() {
        assert!(Domain::Int.compatible(Domain::Int));
        assert!(!Domain::Int.compatible(Domain::Text));
        assert!(Domain::Date.compatible(Domain::Date));
        assert!(!Domain::Bool.compatible(Domain::Date));
    }

    #[test]
    fn sql_names_are_distinct() {
        let names = [
            Domain::Int.sql_name(),
            Domain::Text.sql_name(),
            Domain::Bool.sql_name(),
            Domain::Date.sql_name(),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
