//! Database states and consistency checking (paper Definition 2.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::RelationalSchema;
use crate::value::{Tuple, Value};

/// A reason a database state fails to be consistent with its schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A key dependency `rel : key → all` is violated.
    Key {
        /// The relation-scheme.
        rel: String,
        /// The violated candidate key.
        key: Vec<String>,
    },
    /// An explicit functional dependency is violated.
    Fd(String),
    /// An inclusion dependency is violated.
    Ind(String),
    /// A null constraint is violated.
    Null(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Key { rel, key } => {
                write!(f, "key violation on {rel} ({})", key.join(","))
            }
            Violation::Fd(s) => write!(f, "FD violation: {s}"),
            Violation::Ind(s) => write!(f, "IND violation: {s}"),
            Violation::Null(s) => write!(f, "null-constraint violation: {s}"),
        }
    }
}

/// A database state `r` of a relational schema: one relation per
/// relation-scheme (paper §2).
///
/// Relations are stored by scheme name in a [`BTreeMap`] so iteration — and
/// hence all diagnostics, display output, and test assertions — is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatabaseState {
    relations: BTreeMap<String, Relation>,
}

impl DatabaseState {
    /// The empty state (no relations at all).
    #[must_use]
    pub fn new() -> Self {
        DatabaseState::default()
    }

    /// A state with one empty relation per scheme of `schema`.
    pub fn empty_for(schema: &RelationalSchema) -> Result<Self> {
        let mut state = DatabaseState::new();
        for s in schema.schemes() {
            state
                .relations
                .insert(s.name().to_owned(), Relation::new(s.attrs().to_vec())?);
        }
        Ok(state)
    }

    /// Sets (or replaces) the relation for `name`.
    pub fn set_relation(&mut self, name: impl Into<String>, r: Relation) {
        self.relations.insert(name.into(), r);
    }

    /// The relation associated with scheme `name`.
    #[must_use]
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The relation for `name`, failing with [`Error::StateMismatch`].
    pub fn relation_required(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::StateMismatch {
                detail: format!("state has no relation for scheme `{name}`"),
            })
    }

    /// Mutable access to the relation for `name`.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Inserts a tuple into the relation for `rel`.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool> {
        self.relations
            .get_mut(rel)
            .ok_or_else(|| Error::StateMismatch {
                detail: format!("state has no relation for scheme `{rel}`"),
            })?
            .insert(t)
    }

    /// Iterates `(scheme name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Names of the relations present.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Total number of tuples across all relations.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Total number of stored values (sum of arity × cardinality).
    #[must_use]
    pub fn total_values(&self) -> usize {
        self.relations.values().map(Relation::value_count).sum()
    }

    /// All violations of `schema`'s dependencies and constraints by this
    /// state. Empty means the state is **consistent** (paper §2).
    pub fn violations(&self, schema: &RelationalSchema) -> Result<Vec<Violation>> {
        let mut out = Vec::new();
        // Every scheme must have a relation with a matching header.
        for s in schema.schemes() {
            let r = self.relation_required(s.name())?;
            if r.header() != s.attrs() {
                return Err(Error::StateMismatch {
                    detail: format!(
                        "relation for `{}` has header ({}) but scheme declares ({})",
                        s.name(),
                        r.attr_names().join(","),
                        s.attr_names().join(",")
                    ),
                });
            }
        }
        // Key dependencies (every candidate key).
        for s in schema.schemes() {
            let r = self.relation_required(s.name())?;
            for key in s.candidate_keys() {
                let fd = crate::fd::Fd::new(s.name(), &key, &s.attr_names());
                if !fd.satisfied_by(r)? {
                    out.push(Violation::Key {
                        rel: s.name().to_owned(),
                        key: key.iter().map(|k| (*k).to_owned()).collect(),
                    });
                }
            }
        }
        // Explicit FDs.
        for fd in schema.extra_fds() {
            let r = self.relation_required(&fd.rel)?;
            if !fd.satisfied_by(r)? {
                out.push(Violation::Fd(fd.to_string()));
            }
        }
        // Inclusion dependencies.
        for ind in schema.inds() {
            let lhs = self.relation_required(&ind.lhs_rel)?;
            let rhs = self.relation_required(&ind.rhs_rel)?;
            if !ind.satisfied_by(lhs, rhs)? {
                out.push(Violation::Ind(ind.to_string()));
            }
        }
        // Null constraints.
        for c in schema.null_constraints() {
            let r = self.relation_required(c.rel())?;
            if !c.satisfied_by(r)? {
                out.push(Violation::Null(c.to_string()));
            }
        }
        Ok(out)
    }

    /// Whether the state satisfies all of `schema`'s dependencies and
    /// constraints.
    pub fn is_consistent(&self, schema: &RelationalSchema) -> Result<bool> {
        Ok(self.violations(schema)?.is_empty())
    }

    /// The set of all non-null data values appearing anywhere in the state.
    ///
    /// Definition 2.1's footnote: a state mapping φ *preserves the data
    /// values* of `r` iff the values of `φ(r)` are included in `r` — which
    /// we check as set inclusion of these value sets.
    #[must_use]
    pub fn data_values(&self) -> BTreeSet<Value> {
        self.relations
            .values()
            .flat_map(|r| r.iter())
            .flat_map(|t| t.values().iter())
            .filter(|v| !v.is_null())
            .cloned()
            .collect()
    }

    /// Whether the data values of `self` are included in those of `other`
    /// (Definition 2.1, condition 4 direction `φ(r) ⊆ r`).
    #[must_use]
    pub fn values_included_in(&self, other: &DatabaseState) -> bool {
        self.data_values().is_subset(&other.data_values())
    }

    /// State equality restricted to the relations named in `names` — used
    /// by round-trip checks that only the merged relations changed.
    #[must_use]
    pub fn eq_on(&self, other: &DatabaseState, names: &[&str]) -> bool {
        names
            .iter()
            .all(|n| match (self.relation(n), other.relation(n)) {
                (Some(a), Some(b)) => a.set_eq(b),
                _ => false,
            })
    }
}

impl fmt::Display for DatabaseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, r) in &self.relations {
            write!(f, "{name} {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;
    use crate::ind::InclusionDep;
    use crate::nullcon::NullConstraint;
    use crate::scheme::RelationScheme;

    fn schema() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new(
                "EMP",
                vec![
                    Attribute::new("E.SSN", Domain::Int),
                    Attribute::new("E.NAME", Domain::Text),
                ],
                &["E.SSN"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "MGR",
                vec![Attribute::new("M.SSN", Domain::Int)],
                &["M.SSN"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_ind(InclusionDep::new("MGR", &["M.SSN"], "EMP", &["E.SSN"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("EMP", &["E.SSN"]))
            .unwrap();
        rs
    }

    #[test]
    fn empty_state_is_consistent() {
        let rs = schema();
        let st = DatabaseState::empty_for(&rs).unwrap();
        assert!(st.is_consistent(&rs).unwrap());
        assert_eq!(st.total_tuples(), 0);
    }

    #[test]
    fn key_violation_detected() {
        let rs = schema();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("EMP", Tuple::new([Value::Int(1), Value::text("a")]))
            .unwrap();
        st.insert("EMP", Tuple::new([Value::Int(1), Value::text("b")]))
            .unwrap();
        let v = st.violations(&rs).unwrap();
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::Key { rel, .. } if rel == "EMP")));
    }

    #[test]
    fn ind_violation_detected() {
        let rs = schema();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("MGR", Tuple::new([Value::Int(9)])).unwrap();
        let v = st.violations(&rs).unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::Ind(_)));
        st.insert("EMP", Tuple::new([Value::Int(9), Value::text("x")]))
            .unwrap();
        assert!(st.is_consistent(&rs).unwrap());
    }

    #[test]
    fn null_violation_detected() {
        let rs = schema();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("EMP", Tuple::new([Value::Null, Value::text("x")]))
            .unwrap();
        let v = st.violations(&rs).unwrap();
        assert!(v.iter().any(|v| matches!(v, Violation::Null(_))));
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let rs = schema();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.set_relation(
            "EMP",
            Relation::new(vec![Attribute::new("WRONG", Domain::Int)]).unwrap(),
        );
        assert!(st.violations(&rs).is_err());
    }

    #[test]
    fn data_values_and_inclusion() {
        let rs = schema();
        let mut st = DatabaseState::empty_for(&rs).unwrap();
        st.insert("EMP", Tuple::new([Value::Int(1), Value::Null]))
            .unwrap();
        let vals = st.data_values();
        assert!(vals.contains(&Value::Int(1)));
        assert_eq!(vals.len(), 1); // null excluded
        let bigger = {
            let mut s2 = st.clone();
            s2.insert("EMP", Tuple::new([Value::Int(2), Value::text("z")]))
                .unwrap();
            s2
        };
        assert!(st.values_included_in(&bigger));
        assert!(!bigger.values_included_in(&st));
    }

    #[test]
    fn eq_on_selected_relations() {
        let rs = schema();
        let mut a = DatabaseState::empty_for(&rs).unwrap();
        let mut b = DatabaseState::empty_for(&rs).unwrap();
        a.insert("EMP", Tuple::new([Value::Int(1), Value::text("a")]))
            .unwrap();
        b.insert("EMP", Tuple::new([Value::Int(1), Value::text("a")]))
            .unwrap();
        b.insert("MGR", Tuple::new([Value::Int(1)])).unwrap();
        assert!(a.eq_on(&b, &["EMP"]));
        assert!(!a.eq_on(&b, &["EMP", "MGR"]));
        assert!(!a.eq_on(&b, &["MISSING"]));
    }
}
