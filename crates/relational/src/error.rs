//! Error type shared across the substrate.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by schema construction, algebra operators, and
/// consistency checking.
///
/// The variants carry enough context to be actionable without holding
/// references into the structures that produced them, so they can cross
/// crate boundaries freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name was referenced but does not exist in the relation
    /// or scheme it was looked up in.
    UnknownAttribute {
        /// The attribute that could not be resolved.
        attribute: String,
        /// The relation or scheme it was looked up in.
        context: String,
    },
    /// A relation-scheme name was referenced but is not part of the schema.
    UnknownScheme(String),
    /// Two attribute sets were required to be compatible (same arity,
    /// pairwise-identical domains) but are not.
    IncompatibleAttributes {
        /// Human-readable description of the two sides.
        detail: String,
    },
    /// Attribute names must be globally unique within a schema (the paper's
    /// standing assumption in Definition 4.1).
    DuplicateAttribute(String),
    /// A relation-scheme name occurs twice in a schema.
    DuplicateScheme(String),
    /// A tuple's arity or a value's domain does not match the relation
    /// header it was inserted into.
    TupleMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A key (primary or candidate) refers to attributes outside its scheme,
    /// or is empty.
    MalformedKey {
        /// The scheme whose key is malformed.
        scheme: String,
        /// Description of the problem.
        detail: String,
    },
    /// A dependency or constraint refers to attributes/schemes that make it
    /// ill-formed with respect to the schema.
    MalformedConstraint {
        /// Description of the problem.
        detail: String,
    },
    /// An operation needed a primary key that the scheme does not declare.
    MissingPrimaryKey(String),
    /// A precondition of a procedure (e.g. `Merge`'s pairwise-compatible
    /// primary keys, or `Remove`'s removability conditions) was violated.
    PreconditionViolated {
        /// Which procedure rejected its input.
        procedure: &'static str,
        /// Why.
        detail: String,
    },
    /// A database state mentions a relation not in the schema, or misses one.
    StateMismatch {
        /// Description of the problem.
        detail: String,
    },
    /// A dependency or null constraint would be violated by a data change.
    /// Raised by the engine's DML path; carried here so engine errors fold
    /// into the workspace-wide `Result` without a second error hierarchy.
    ConstraintViolation(String),
    /// A fault deliberately fired by the engine's fault-injection layer.
    /// Never raised in production configurations; carried here so injected
    /// faults travel the same typed-error paths real failures do.
    Injected {
        /// The injection site that fired (see `engine::fault::site`).
        site: String,
    },
    /// A query exceeded its `QueryBudget` (row cap or wall-time
    /// deadline) and was cancelled cooperatively at a morsel boundary.
    ///
    /// `QueryBudget` lives in the engine crate; the variant lives here so
    /// budget aborts fold into the workspace-wide `Result`.
    BudgetExceeded {
        /// Which limit tripped and the partial progress made
        /// (rows produced / morsels completed) at cancellation.
        detail: String,
    },
    /// A panic was caught (`catch_unwind`) inside the executor or the
    /// batch machinery and converted into a typed error after the undo
    /// log was fully unwound. The process survives; only the offending
    /// query or batch fails.
    ExecutionPanic {
        /// The captured panic message.
        context: String,
    },
    /// The durability layer failed: a write-ahead-log append or snapshot
    /// could not be made durable, a data directory is missing or already
    /// initialized, or a persisted record failed to decode during
    /// recovery.
    ///
    /// The durability layer lives in the engine crate; the variant lives
    /// here so storage failures fold into the workspace-wide `Result`
    /// (the same arrangement as `Injected` and `BudgetExceeded`).
    Durability {
        /// What failed, including the file or record involved.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute { attribute, context } => {
                write!(f, "unknown attribute `{attribute}` in `{context}`")
            }
            Error::UnknownScheme(name) => write!(f, "unknown relation-scheme `{name}`"),
            Error::IncompatibleAttributes { detail } => {
                write!(f, "incompatible attribute sets: {detail}")
            }
            Error::DuplicateAttribute(name) => {
                write!(f, "attribute name `{name}` is not globally unique")
            }
            Error::DuplicateScheme(name) => {
                write!(f, "relation-scheme name `{name}` declared twice")
            }
            Error::TupleMismatch { detail } => write!(f, "tuple mismatch: {detail}"),
            Error::MalformedKey { scheme, detail } => {
                write!(f, "malformed key on `{scheme}`: {detail}")
            }
            Error::MalformedConstraint { detail } => {
                write!(f, "malformed dependency or constraint: {detail}")
            }
            Error::MissingPrimaryKey(scheme) => {
                write!(f, "relation-scheme `{scheme}` has no primary key")
            }
            Error::PreconditionViolated { procedure, detail } => {
                write!(f, "{procedure}: precondition violated: {detail}")
            }
            Error::StateMismatch { detail } => write!(f, "database state mismatch: {detail}"),
            Error::ConstraintViolation(detail) => write!(f, "constraint violation: {detail}"),
            Error::Injected { site } => write!(f, "injected fault at site `{site}`"),
            Error::BudgetExceeded { detail } => write!(f, "query budget exceeded: {detail}"),
            Error::ExecutionPanic { context } => write!(f, "execution panicked: {context}"),
            Error::Durability { detail } => write!(f, "durability failure: {detail}"),
        }
    }
}

impl std::error::Error for Error {}
