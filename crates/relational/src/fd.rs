//! Functional dependencies, attribute closure, candidate keys, and BCNF.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::scheme::RelationScheme;

/// A functional dependency `R : Y → Z` over a single relation-scheme
/// (paper §2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    /// The relation-scheme the dependency is declared over.
    pub rel: String,
    /// Left-hand side `Y`.
    pub lhs: Vec<String>,
    /// Right-hand side `Z`.
    pub rhs: Vec<String>,
}

impl Fd {
    /// Creates a dependency `rel : lhs → rhs`.
    pub fn new(rel: impl Into<String>, lhs: &[&str], rhs: &[&str]) -> Self {
        Fd {
            rel: rel.into(),
            lhs: lhs.iter().map(|s| (*s).to_owned()).collect(),
            rhs: rhs.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Whether the dependency is trivial (`Z ⊆ Y`).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.rhs.iter().all(|z| self.lhs.contains(z))
    }

    /// Whether `r` satisfies this dependency: any two tuples agreeing on
    /// `Y` (nulls compared as values, per the paper's identical-nulls model)
    /// agree on `Z`.
    pub fn satisfied_by(&self, r: &Relation) -> Result<bool> {
        let lhs: Vec<&str> = self.lhs.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = self.rhs.iter().map(String::as_str).collect();
        let lpos = r.positions(&lhs)?;
        let rpos = r.positions(&rhs)?;
        let mut seen: std::collections::HashMap<crate::value::Tuple, crate::value::Tuple> =
            std::collections::HashMap::with_capacity(r.len());
        for t in r.iter() {
            let key = t.project(&lpos);
            let val = t.project(&rpos);
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if e.get() != &val {
                        return Ok(false);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        Ok(true)
    }

    /// Validates the dependency against the scheme it is declared over.
    pub fn validate(&self, scheme: &RelationScheme) -> Result<()> {
        for a in self.lhs.iter().chain(&self.rhs) {
            if !scheme.has_attr(a) {
                return Err(Error::MalformedConstraint {
                    detail: format!("FD on `{}` mentions unknown attribute `{a}`", self.rel),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} : {} -> {}",
            self.rel,
            self.lhs.join(","),
            self.rhs.join(",")
        )
    }
}

/// A set of functional dependencies, all scoped to relation-schemes by name.
///
/// The closure algorithms work per relation-scheme: the paper's schemas only
/// carry *key* dependencies, but `Merge`'s BCNF-preservation argument
/// (Proposition 4.1 ii) also folds in the FDs induced by total-equality
/// constraints, so the engine is general.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        FdSet::default()
    }

    /// The key dependencies `Ri : Ki → Xi` implicit in a list of schemes
    /// (every candidate key contributes one dependency).
    #[must_use]
    pub fn from_schemes<'a>(schemes: impl IntoIterator<Item = &'a RelationScheme>) -> Self {
        let mut set = FdSet::new();
        for s in schemes {
            let all: Vec<&str> = s.attr_names();
            for key in s.candidate_keys() {
                set.push(Fd::new(s.name(), &key, &all));
            }
        }
        set
    }

    /// Adds a dependency.
    pub fn push(&mut self, fd: Fd) {
        if !self.fds.contains(&fd) {
            self.fds.push(fd);
        }
    }

    /// The dependencies, in insertion order.
    #[must_use]
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// The dependencies declared over relation-scheme `rel`.
    pub fn for_rel<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a Fd> {
        self.fds.iter().filter(move |f| f.rel == rel)
    }

    /// Attribute closure `start⁺` under the dependencies of `rel`
    /// (standard fixed-point algorithm).
    #[must_use]
    pub fn closure(&self, rel: &str, start: &[&str]) -> BTreeSet<String> {
        let mut closure: BTreeSet<String> = start.iter().map(|s| (*s).to_owned()).collect();
        let rel_fds: Vec<&Fd> = self.for_rel(rel).collect();
        loop {
            let mut grew = false;
            for fd in &rel_fds {
                if fd.lhs.iter().all(|a| closure.contains(a)) {
                    for z in &fd.rhs {
                        if closure.insert(z.clone()) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                return closure;
            }
        }
    }

    /// Whether this set implies `fd` (via attribute closure).
    #[must_use]
    pub fn implies(&self, fd: &Fd) -> bool {
        let lhs: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
        let closure = self.closure(&fd.rel, &lhs);
        fd.rhs.iter().all(|z| closure.contains(z))
    }

    /// Whether `attrs` is a superkey of `scheme` under these dependencies.
    #[must_use]
    pub fn is_superkey(&self, scheme: &RelationScheme, attrs: &[&str]) -> bool {
        let closure = self.closure(scheme.name(), attrs);
        scheme.attr_names().iter().all(|a| closure.contains(*a))
    }

    /// All minimal (candidate) keys of `scheme` under these dependencies.
    ///
    /// Exponential in the worst case, but schemas in this domain are narrow;
    /// the search seeds from the attributes that never appear on any FD
    /// right-hand side (which must be in every key) and explores upward.
    #[must_use]
    pub fn candidate_keys(&self, scheme: &RelationScheme) -> Vec<BTreeSet<String>> {
        let all: Vec<&str> = scheme.attr_names();
        // Attributes never derived by a nontrivial FD must be in every key.
        let derived: HashSet<&str> = self
            .for_rel(scheme.name())
            .filter(|fd| !fd.is_trivial())
            .flat_map(|fd| fd.rhs.iter().map(String::as_str))
            .collect();
        let core: Vec<&str> = all
            .iter()
            .copied()
            .filter(|a| !derived.contains(a))
            .collect();
        let optional: Vec<&str> = all
            .iter()
            .copied()
            .filter(|a| derived.contains(a))
            .collect();

        let mut keys: Vec<BTreeSet<String>> = Vec::new();
        if self.is_superkey(scheme, &core) {
            keys.push(core.iter().map(|s| (*s).to_owned()).collect());
            return keys;
        }
        // Breadth-first over supersets of the core (by added-subset size) so
        // that minimal keys are found before their supersets.
        let n = optional.len();
        for size in 1..=n {
            let mut stack: Vec<(usize, Vec<&str>)> = vec![(0, Vec::new())];
            while let Some((start, chosen)) = stack.pop() {
                if chosen.len() == size {
                    let mut cand = core.clone();
                    cand.extend(&chosen);
                    let cand_set: BTreeSet<String> = cand.iter().map(|s| (*s).to_owned()).collect();
                    if keys.iter().any(|k| k.is_subset(&cand_set)) {
                        continue;
                    }
                    if self.is_superkey(scheme, &cand) {
                        keys.push(cand_set);
                    }
                    continue;
                }
                for (i, opt) in optional.iter().enumerate().skip(start) {
                    let mut next = chosen.clone();
                    next.push(*opt);
                    stack.push((i + 1, next));
                }
            }
        }
        keys
    }

    /// Whether `scheme` is in **Boyce–Codd Normal Form** under these
    /// dependencies: every nontrivial declared dependency has a superkey
    /// left-hand side (paper §2).
    #[must_use]
    pub fn is_bcnf(&self, scheme: &RelationScheme) -> bool {
        self.for_rel(scheme.name())
            .filter(|fd| !fd.is_trivial())
            .all(|fd| {
                let lhs: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
                self.is_superkey(scheme, &lhs)
            })
    }

    /// Whether `scheme` is in **third normal form** under these
    /// dependencies: every nontrivial dependency either has a superkey
    /// left-hand side or a right-hand side of prime attributes (attributes
    /// of some candidate key). Strictly weaker than BCNF; provided because
    /// real schemas the merging technique is pointed at are often designed
    /// to 3NF first.
    #[must_use]
    pub fn is_3nf(&self, scheme: &RelationScheme) -> bool {
        let keys = self.candidate_keys(scheme);
        let prime: HashSet<&str> = keys
            .iter()
            .flat_map(|k| k.iter().map(String::as_str))
            .collect();
        self.for_rel(scheme.name())
            .filter(|fd| !fd.is_trivial())
            .all(|fd| {
                let lhs: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
                self.is_superkey(scheme, &lhs)
                    || fd
                        .rhs
                        .iter()
                        .filter(|a| !fd.lhs.contains(a))
                        .all(|a| prime.contains(a.as_str()))
            })
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: &FdSet) {
        for fd in &other.fds {
            self.push(fd.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;
    use crate::value::{Tuple, Value};

    fn scheme(name: &str, attrs: &[&str], key: &[&str]) -> RelationScheme {
        RelationScheme::new(
            name,
            attrs
                .iter()
                .map(|a| Attribute::new(*a, Domain::Int))
                .collect(),
            key,
        )
        .unwrap()
    }

    #[test]
    fn triviality() {
        assert!(Fd::new("R", &["A", "B"], &["A"]).is_trivial());
        assert!(!Fd::new("R", &["A"], &["B"]).is_trivial());
    }

    #[test]
    fn satisfaction_on_relations() {
        let header = vec![
            Attribute::new("A", Domain::Int),
            Attribute::new("B", Domain::Int),
        ];
        let ok = Relation::with_rows(
            header.clone(),
            [
                Tuple::new([Value::Int(1), Value::Int(10)]),
                Tuple::new([Value::Int(2), Value::Int(10)]),
            ],
        )
        .unwrap();
        let fd = Fd::new("R", &["A"], &["B"]);
        assert!(fd.satisfied_by(&ok).unwrap());
        let bad = Relation::with_rows(
            header,
            [
                Tuple::new([Value::Int(1), Value::Int(10)]),
                Tuple::new([Value::Int(1), Value::Int(20)]),
            ],
        )
        .unwrap();
        assert!(!fd.satisfied_by(&bad).unwrap());
    }

    #[test]
    fn fd_satisfaction_treats_null_as_value() {
        let header = vec![
            Attribute::new("A", Domain::Int),
            Attribute::new("B", Domain::Int),
        ];
        let r = Relation::with_rows(
            header,
            [
                Tuple::new([Value::Null, Value::Int(1)]),
                Tuple::new([Value::Null, Value::Int(2)]),
            ],
        )
        .unwrap();
        // Two tuples with null A but different B violate A -> B under the
        // identical-nulls model.
        assert!(!Fd::new("R", &["A"], &["B"]).satisfied_by(&r).unwrap());
    }

    #[test]
    fn closure_fixed_point() {
        let mut set = FdSet::new();
        set.push(Fd::new("R", &["A"], &["B"]));
        set.push(Fd::new("R", &["B"], &["C"]));
        set.push(Fd::new("S", &["C"], &["D"])); // other relation: ignored
        let c = set.closure("R", &["A"]);
        assert_eq!(
            c.iter().map(String::as_str).collect::<Vec<_>>(),
            ["A", "B", "C"]
        );
        assert!(set.implies(&Fd::new("R", &["A"], &["C"])));
        assert!(!set.implies(&Fd::new("R", &["A"], &["D"])));
    }

    #[test]
    fn key_deps_from_schemes() {
        let s = scheme("R", &["A", "B", "C"], &["A"]);
        let set = FdSet::from_schemes([&s]);
        assert!(set.implies(&Fd::new("R", &["A"], &["B", "C"])));
        assert!(set.is_superkey(&s, &["A"]));
        assert!(!set.is_superkey(&s, &["B"]));
    }

    #[test]
    fn candidate_keys_simple() {
        // R(A,B,C), A->B, B->A, AB is not minimal; keys: {A,C}? No:
        // declared key A? Build FDs directly: A->B, B->A, C in every key.
        let s = scheme("R", &["A", "B", "C"], &["A", "C"]);
        let mut set = FdSet::new();
        set.push(Fd::new("R", &["A"], &["B"]));
        set.push(Fd::new("R", &["B"], &["A"]));
        set.push(Fd::new("R", &["A", "C"], &["A", "B", "C"]));
        let keys = set.candidate_keys(&s);
        let as_vecs: Vec<Vec<&str>> = keys
            .iter()
            .map(|k| k.iter().map(String::as_str).collect())
            .collect();
        assert!(as_vecs.contains(&vec!["A", "C"]));
        assert!(as_vecs.contains(&vec!["B", "C"]));
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn candidate_keys_core_only() {
        let s = scheme("R", &["A", "B"], &["A"]);
        let set = FdSet::from_schemes([&s]);
        let keys = set.candidate_keys(&s);
        assert_eq!(keys.len(), 1);
        assert!(keys[0].contains("A"));
        assert!(!keys[0].contains("B"));
    }

    #[test]
    fn bcnf_detection() {
        let s = scheme("R", &["A", "B", "C"], &["A"]);
        let mut set = FdSet::from_schemes([&s]);
        assert!(set.is_bcnf(&s));
        // Non-key dependency B -> C breaks BCNF.
        set.push(Fd::new("R", &["B"], &["C"]));
        assert!(!set.is_bcnf(&s));
    }

    #[test]
    fn third_normal_form_weaker_than_bcnf() {
        // The classic 3NF-not-BCNF example: R(S, C, T) with SC -> T (key)
        // and T -> C (teacher determines course). T -> C has a non-superkey
        // LHS (not BCNF) but C is prime (in candidate key {S, C}).
        let s = scheme("R", &["S", "C", "T"], &["S", "C"]);
        let mut set = FdSet::from_schemes([&s]);
        set.push(Fd::new("R", &["T"], &["C"]));
        assert!(!set.is_bcnf(&s));
        assert!(set.is_3nf(&s));
        // A transitive dependency to a non-prime attribute breaks 3NF too.
        let s2 = scheme("R2", &["K", "B", "V"], &["K"]);
        let mut set2 = FdSet::from_schemes([&s2]);
        set2.push(Fd::new("R2", &["B"], &["V"]));
        assert!(!set2.is_3nf(&s2));
        // Any BCNF scheme is 3NF.
        let s3 = scheme("R3", &["K", "V"], &["K"]);
        let set3 = FdSet::from_schemes([&s3]);
        assert!(set3.is_bcnf(&s3) && set3.is_3nf(&s3));
    }

    #[test]
    fn bcnf_with_equivalent_keys() {
        // Total-equality-style FDs: K1 <-> K2, both determine everything.
        let s = scheme("R", &["K1", "K2", "V"], &["K1"]);
        let mut set = FdSet::from_schemes([&s]);
        set.push(Fd::new("R", &["K2"], &["K1"]));
        set.push(Fd::new("R", &["K1"], &["K2"]));
        assert!(set.is_bcnf(&s));
        let keys = set.candidate_keys(&s);
        assert_eq!(keys.len(), 2);
    }
}
