//! Inclusion dependencies and the `Refkey` recursion of Proposition 3.1.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::scheme::RelationScheme;

/// An inclusion dependency `Ri[Y] ⊆ Rj[Z]` (paper §2).
///
/// `Y` and `Z` are positionally corresponding, compatible attribute lists.
/// When `Z` is the primary key of `Rj` the dependency is **key-based** — a
/// referential integrity constraint, and `Y` is a foreign key in `Ri`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InclusionDep {
    /// Left relation-scheme `Ri`.
    pub lhs_rel: String,
    /// Left attribute list `Y`.
    pub lhs_attrs: Vec<String>,
    /// Right relation-scheme `Rj`.
    pub rhs_rel: String,
    /// Right attribute list `Z`.
    pub rhs_attrs: Vec<String>,
}

impl InclusionDep {
    /// Creates `lhs_rel[lhs_attrs] ⊆ rhs_rel[rhs_attrs]`.
    pub fn new(
        lhs_rel: impl Into<String>,
        lhs_attrs: &[&str],
        rhs_rel: impl Into<String>,
        rhs_attrs: &[&str],
    ) -> Self {
        InclusionDep {
            lhs_rel: lhs_rel.into(),
            lhs_attrs: lhs_attrs.iter().map(|s| (*s).to_owned()).collect(),
            rhs_rel: rhs_rel.into(),
            rhs_attrs: rhs_attrs.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Whether this dependency is **key-based** with respect to `rhs`:
    /// its right-hand side is exactly `rhs`'s primary key.
    #[must_use]
    pub fn is_key_based(&self, rhs: &RelationScheme) -> bool {
        debug_assert_eq!(rhs.name(), self.rhs_rel);
        let z: Vec<&str> = self.rhs_attrs.iter().map(String::as_str).collect();
        rhs.is_primary_key(&z)
    }

    /// Whether the dependency is satisfied by concrete relations:
    /// `π↓_Y(r_lhs) ⊆ π↓_Z(r_rhs)` (total projections, paper §2).
    pub fn satisfied_by(&self, r_lhs: &Relation, r_rhs: &Relation) -> Result<bool> {
        let y: Vec<&str> = self.lhs_attrs.iter().map(String::as_str).collect();
        let z: Vec<&str> = self.rhs_attrs.iter().map(String::as_str).collect();
        let left = crate::algebra::total_project(r_lhs, &y)?;
        let right = crate::algebra::total_project(r_rhs, &z)?;
        let included = left.iter().all(|t| right.contains(t));
        Ok(included)
    }

    /// Validates attribute existence, arity and compatibility against the
    /// two schemes involved.
    pub fn validate(&self, lhs: &RelationScheme, rhs: &RelationScheme) -> Result<()> {
        if self.lhs_attrs.len() != self.rhs_attrs.len() || self.lhs_attrs.is_empty() {
            return Err(Error::MalformedConstraint {
                detail: format!("IND {self} has mismatched or empty attribute lists"),
            });
        }
        for (y, z) in self.lhs_attrs.iter().zip(&self.rhs_attrs) {
            let (ya, za) = match (lhs.attr(y), rhs.attr(z)) {
                (Some(ya), Some(za)) => (ya, za),
                _ => {
                    return Err(Error::MalformedConstraint {
                        detail: format!("IND {self} mentions unknown attributes"),
                    })
                }
            };
            if !ya.compatible(za) {
                return Err(Error::MalformedConstraint {
                    detail: format!("IND {self}: `{y}` and `{z}` have incompatible domains"),
                });
            }
        }
        Ok(())
    }

    /// Renders in the paper's notation, e.g. `TEACH [T.C.NR] <= OFFER [O.C.NR]`.
    #[must_use]
    pub fn notation(&self) -> String {
        format!(
            "{} [{}] <= {} [{}]",
            self.lhs_rel,
            self.lhs_attrs.join(","),
            self.rhs_rel,
            self.rhs_attrs.join(",")
        )
    }
}

impl fmt::Display for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.notation())
    }
}

/// `Refkey(R₀, R̄)` (Proposition 3.1): the schemes of `R̄` whose primary key
/// is declared included in `R₀`'s primary key, i.e. those `Ri ∈ R̄` with
/// `Ri[Ki] ⊆ R₀[K₀] ∈ I`.
#[must_use]
pub fn refkey<'a>(
    r0: &RelationScheme,
    candidates: &[&'a RelationScheme],
    inds: &[InclusionDep],
) -> Vec<&'a RelationScheme> {
    candidates
        .iter()
        .copied()
        .filter(|ri| ri.name() != r0.name())
        .filter(|ri| {
            inds.iter().any(|ind| {
                ind.lhs_rel == ri.name()
                    && ind.rhs_rel == r0.name()
                    && is_key_list(ri, &ind.lhs_attrs)
                    && is_key_list(r0, &ind.rhs_attrs)
            })
        })
        .collect()
}

fn is_key_list(scheme: &RelationScheme, attrs: &[String]) -> bool {
    let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
    scheme.is_primary_key(&names)
}

/// `Refkey*(R₀, R̄)`: the transitive closure of [`refkey`] — every scheme of
/// `R̄` reachable from `R₀` through chains of key-to-key inclusion
/// dependencies. Proposition 3.1: `R₀` is a key-relation of `R̄` iff
/// `R̄ = {R₀} ∪ Refkey*(R₀, R̄)`.
#[must_use]
pub fn refkey_star<'a>(
    r0: &RelationScheme,
    candidates: &[&'a RelationScheme],
    inds: &[InclusionDep],
) -> Vec<&'a RelationScheme> {
    let mut reached: BTreeSet<String> = BTreeSet::new();
    let mut frontier: Vec<&RelationScheme> = vec![r0];
    let mut out: Vec<&'a RelationScheme> = Vec::new();
    reached.insert(r0.name().to_owned());
    while let Some(current) = frontier.pop() {
        for ri in refkey(current, candidates, inds) {
            if reached.insert(ri.name().to_owned()) {
                out.push(ri);
                frontier.push(ri);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;
    use crate::value::{Tuple, Value};

    fn scheme(name: &str, attrs: &[&str], key: &[&str]) -> RelationScheme {
        RelationScheme::new(
            name,
            attrs
                .iter()
                .map(|a| Attribute::new(*a, Domain::Int))
                .collect(),
            key,
        )
        .unwrap()
    }

    #[test]
    fn key_based_detection() {
        let course = scheme("COURSE", &["C.NR"], &["C.NR"]);
        let kb = InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]);
        assert!(kb.is_key_based(&course));
        let wide = scheme("OFFER", &["O.C.NR", "O.D"], &["O.C.NR"]);
        let nkb = InclusionDep::new("X", &["A"], "OFFER", &["O.D"]);
        assert!(!nkb.is_key_based(&wide));
    }

    #[test]
    fn satisfaction_uses_total_projections() {
        let lhs = Relation::with_rows(
            vec![Attribute::new("A", Domain::Int)],
            [
                Tuple::new([Value::Int(1)]),
                Tuple::new([Value::Null]), // null subtuple: exempt
            ],
        )
        .unwrap();
        let rhs = Relation::with_rows(
            vec![Attribute::new("B", Domain::Int)],
            [Tuple::new([Value::Int(1)])],
        )
        .unwrap();
        let ind = InclusionDep::new("L", &["A"], "R", &["B"]);
        assert!(ind.satisfied_by(&lhs, &rhs).unwrap());

        let rhs_missing = Relation::with_rows(vec![Attribute::new("B", Domain::Int)], []).unwrap();
        assert!(!ind.satisfied_by(&lhs, &rhs_missing).unwrap());
    }

    #[test]
    fn validate_checks_arity_and_domains() {
        let a = scheme("A", &["A.K"], &["A.K"]);
        let b = scheme("B", &["B.K"], &["B.K"]);
        assert!(InclusionDep::new("A", &["A.K"], "B", &["B.K"])
            .validate(&a, &b)
            .is_ok());
        assert!(InclusionDep::new("A", &["A.K"], "B", &["NOPE"])
            .validate(&a, &b)
            .is_err());
        assert!(InclusionDep::new("A", &[], "B", &[])
            .validate(&a, &b)
            .is_err());
        let text =
            RelationScheme::new("T", vec![Attribute::new("T.K", Domain::Text)], &["T.K"]).unwrap();
        assert!(InclusionDep::new("A", &["A.K"], "T", &["T.K"])
            .validate(&a, &text)
            .is_err());
    }

    /// The paper's Figure 3 chain: TEACH[T.C.NR] <= OFFER[O.C.NR] <=
    /// COURSE[C.NR] — wait, in Fig. 3 only OFFER references COURSE by key;
    /// here we reproduce the COURSE/OFFER/TEACH/ASSIST key chain used in
    /// Figures 4 and 5.
    fn university() -> (Vec<RelationScheme>, Vec<InclusionDep>) {
        let course = scheme("COURSE", &["C.NR"], &["C.NR"]);
        let offer = scheme("OFFER", &["O.C.NR", "O.D.NAME"], &["O.C.NR"]);
        let teach = scheme("TEACH", &["T.C.NR", "T.F.SSN"], &["T.C.NR"]);
        let assist = scheme("ASSIST", &["A.C.NR", "A.S.SSN"], &["A.C.NR"]);
        let inds = vec![
            InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]),
            InclusionDep::new("TEACH", &["T.C.NR"], "OFFER", &["O.C.NR"]),
            InclusionDep::new("ASSIST", &["A.C.NR"], "OFFER", &["O.C.NR"]),
        ];
        (vec![course, offer, teach, assist], inds)
    }

    #[test]
    fn refkey_direct() {
        let (schemes, inds) = university();
        let refs: Vec<&RelationScheme> = schemes.iter().collect();
        let direct = refkey(&schemes[0], &refs, &inds);
        assert_eq!(
            direct.iter().map(|s| s.name()).collect::<Vec<_>>(),
            ["OFFER"]
        );
        let from_offer = refkey(&schemes[1], &refs, &inds);
        let mut names: Vec<&str> = from_offer.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        assert_eq!(names, ["ASSIST", "TEACH"]);
    }

    #[test]
    fn refkey_star_transitive() {
        let (schemes, inds) = university();
        let refs: Vec<&RelationScheme> = schemes.iter().collect();
        let star = refkey_star(&schemes[0], &refs, &inds);
        let mut names: Vec<&str> = star.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        assert_eq!(names, ["ASSIST", "OFFER", "TEACH"]);
        // COURSE is a key-relation of the whole set (Prop 3.1).
        assert_eq!(star.len() + 1, schemes.len());
        // OFFER is a key-relation of {OFFER, TEACH, ASSIST}.
        let sub: Vec<&RelationScheme> = schemes[1..].iter().collect();
        let star2 = refkey_star(&schemes[1], &sub, &inds);
        assert_eq!(star2.len() + 1, sub.len());
    }

    #[test]
    fn refkey_requires_key_to_key() {
        // A non-key LHS does not count.
        let a = scheme("A", &["A.K", "A.V"], &["A.K"]);
        let b = scheme("B", &["B.K"], &["B.K"]);
        let inds = vec![InclusionDep::new("A", &["A.V"], "B", &["B.K"])];
        let schemes = [&a, &b];
        assert!(refkey(&b, &schemes, &inds).is_empty());
    }
}
