//! Relational model substrate for the ICDE'92 relation-merging reproduction.
//!
//! This crate implements Section 2 and Section 3 of Markowitz, *"A Relation
//! Merging Technique for Relational Databases"* (ICDE 1992):
//!
//! * typed [`Domain`]s, [`Attribute`]s, null-aware [`Value`]s and [`Tuple`]s;
//! * [`Relation`]s with set semantics and the relational algebra the paper
//!   uses — projection, *total* projection, renaming, union, equi-join, and
//!   the three-part **outer-equi-join** ([`algebra`]);
//! * [`RelationScheme`]s with primary/candidate keys, functional dependencies
//!   with closure and a **BCNF** test ([`fd`]);
//! * inclusion dependencies, the key-based (referential-integrity) subclass,
//!   and the `Refkey`/`Refkey*` recursion of Proposition 3.1 ([`ind`]);
//! * the paper's five null-constraint forms — null-existence,
//!   nulls-not-allowed, null-synchronization sets, part-null and
//!   total-equality — with satisfaction checking and inference engines
//!   ([`nullcon`]);
//! * whole-schema containers and database-state consistency checking
//!   ([`schema`], [`state`]).
//!
//! Everything in the merging crate (`relmerge-core`) is defined in terms of
//! the vocabulary exported here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod attribute;
pub mod domain;
pub mod error;
pub mod fd;
pub mod ind;
pub mod notation;
pub mod nullcon;
pub mod relation;
pub mod schema;
pub mod scheme;
pub mod state;
pub mod theory;
pub mod value;

pub use attribute::{AttrCorrespondence, Attribute};
pub use domain::Domain;
pub use error::{Error, Result};
pub use fd::{Fd, FdSet};
pub use ind::InclusionDep;
pub use nullcon::NullConstraint;
pub use relation::Relation;
pub use schema::RelationalSchema;
pub use scheme::RelationScheme;
pub use state::DatabaseState;
pub use value::{Tuple, Value};
