//! Relation-schemes with primary and candidate keys.

use std::collections::HashSet;
use std::fmt;

use crate::attribute::{self, Attribute};
use crate::error::{Error, Result};

/// A relation-scheme `Ri(Xi)` together with its declared keys.
///
/// Paper §2: *"A relation-scheme can be associated with several candidate
/// keys from which one primary key is chosen."* The primary key is the first
/// entry of `candidate_keys`. Key dependencies `Ri : Ki → Xi` are implicit
/// in the declaration and materialized by [`crate::fd::FdSet::from_schemes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationScheme {
    name: String,
    attrs: Vec<Attribute>,
    /// Candidate keys as lists of attribute names; index 0 is the primary key.
    candidate_keys: Vec<Vec<String>>,
}

impl RelationScheme {
    /// Creates a scheme with a single (primary) key.
    pub fn new(
        name: impl Into<String>,
        attrs: Vec<Attribute>,
        primary_key: &[&str],
    ) -> Result<Self> {
        Self::with_candidate_keys(name, attrs, &[primary_key])
    }

    /// Creates a scheme with several candidate keys; the first is primary.
    pub fn with_candidate_keys(
        name: impl Into<String>,
        attrs: Vec<Attribute>,
        keys: &[&[&str]],
    ) -> Result<Self> {
        let name = name.into();
        let mut seen = HashSet::with_capacity(attrs.len());
        for a in &attrs {
            if !seen.insert(a.name()) {
                return Err(Error::DuplicateAttribute(a.name().to_owned()));
            }
        }
        if keys.is_empty() {
            return Err(Error::MissingPrimaryKey(name));
        }
        let mut candidate_keys = Vec::with_capacity(keys.len());
        for key in keys {
            if key.is_empty() {
                return Err(Error::MalformedKey {
                    scheme: name,
                    detail: "empty key".to_owned(),
                });
            }
            let mut key_names = Vec::with_capacity(key.len());
            for k in *key {
                if attribute::position(&attrs, k).is_none() {
                    return Err(Error::MalformedKey {
                        scheme: name,
                        detail: format!("key attribute `{k}` not in scheme"),
                    });
                }
                if key_names.iter().any(|n| n == k) {
                    return Err(Error::MalformedKey {
                        scheme: name,
                        detail: format!("key attribute `{k}` repeated"),
                    });
                }
                key_names.push((*k).to_owned());
            }
            candidate_keys.push(key_names);
        }
        Ok(RelationScheme {
            name,
            attrs,
            candidate_keys,
        })
    }

    /// The scheme name `Ri`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute set `Xi`, in declaration order.
    #[must_use]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute names, in declaration order.
    #[must_use]
    pub fn attr_names(&self) -> Vec<&str> {
        self.attrs.iter().map(Attribute::name).collect()
    }

    /// The primary key `Ki` as attribute names.
    #[must_use]
    pub fn primary_key(&self) -> Vec<&str> {
        self.candidate_keys[0].iter().map(String::as_str).collect()
    }

    /// The primary-key attributes, with domains, in key order.
    #[must_use]
    pub fn primary_key_attrs(&self) -> Vec<Attribute> {
        self.candidate_keys[0]
            .iter()
            .map(|k| self.attr(k).expect("validated at construction").clone())
            .collect()
    }

    /// All candidate keys (primary first), as name lists.
    #[must_use]
    pub fn candidate_keys(&self) -> Vec<Vec<&str>> {
        self.candidate_keys
            .iter()
            .map(|k| k.iter().map(String::as_str).collect())
            .collect()
    }

    /// Looks up an attribute by name.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.name() == name)
    }

    /// Whether `name` is one of this scheme's attributes.
    #[must_use]
    pub fn has_attr(&self, name: &str) -> bool {
        self.attr(name).is_some()
    }

    /// Whether `names` is exactly the primary key (order-insensitive).
    #[must_use]
    pub fn is_primary_key(&self, names: &[&str]) -> bool {
        let pk = &self.candidate_keys[0];
        names.len() == pk.len() && names.iter().all(|n| pk.iter().any(|k| k == n))
    }

    /// The non-key attributes `Xi − Ki` (declaration order).
    #[must_use]
    pub fn non_key_attrs(&self) -> Vec<&Attribute> {
        let pk = &self.candidate_keys[0];
        self.attrs
            .iter()
            .filter(|a| !pk.iter().any(|k| k == a.name()))
            .collect()
    }

    /// Whether this scheme's primary key is *pairwise compatible* with
    /// `other`'s (paper §3: equal arity, pairwise-compatible domains under
    /// the key order) — the precondition for being merged together.
    #[must_use]
    pub fn key_compatible(&self, other: &RelationScheme) -> bool {
        let a = self.primary_key_attrs();
        let b = other.primary_key_attrs();
        attribute::compatible_sets(&a, &b)
    }

    /// Returns a copy with `extra` attributes appended (used by `Merge`).
    pub fn extended(&self, extra: &[Attribute]) -> Result<RelationScheme> {
        let mut attrs = self.attrs.clone();
        attrs.extend_from_slice(extra);
        let keys: Vec<Vec<&str>> = self
            .candidate_keys
            .iter()
            .map(|k| k.iter().map(String::as_str).collect())
            .collect();
        let key_refs: Vec<&[&str]> = keys.iter().map(Vec::as_slice).collect();
        RelationScheme::with_candidate_keys(self.name.clone(), attrs, &key_refs)
    }
}

impl fmt::Display for RelationScheme {
    /// Prints in the paper's figure notation: `NAME (KEY1, KEY2, other, …)`
    /// with the primary key first (the figures underline it; we list it
    /// first instead).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pk: Vec<&str> = self.primary_key();
        let rest: Vec<&str> = self
            .attrs
            .iter()
            .map(Attribute::name)
            .filter(|n| !pk.contains(n))
            .collect();
        let mut parts: Vec<String> = pk.iter().map(|s| format!("_{s}_")).collect();
        parts.extend(rest.iter().map(|s| (*s).to_owned()));
        write!(f, "{} ({})", self.name, parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn works() -> RelationScheme {
        RelationScheme::new(
            "WORKS",
            vec![
                Attribute::new("W.SSN", Domain::Int),
                Attribute::new("W.NR", Domain::Int),
                Attribute::new("W.DATE", Domain::Date),
            ],
            &["W.SSN", "W.NR"],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let w = works();
        assert_eq!(w.name(), "WORKS");
        assert_eq!(w.primary_key(), ["W.SSN", "W.NR"]);
        assert_eq!(w.attr_names(), ["W.SSN", "W.NR", "W.DATE"]);
        assert_eq!(
            w.non_key_attrs()
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>(),
            ["W.DATE"]
        );
        assert!(w.is_primary_key(&["W.NR", "W.SSN"]));
        assert!(!w.is_primary_key(&["W.SSN"]));
    }

    #[test]
    fn rejects_bad_keys() {
        let attrs = || vec![Attribute::new("A", Domain::Int)];
        assert!(matches!(
            RelationScheme::new("R", attrs(), &["B"]),
            Err(Error::MalformedKey { .. })
        ));
        assert!(matches!(
            RelationScheme::new("R", attrs(), &[]),
            Err(Error::MalformedKey { .. })
        ));
        assert!(matches!(
            RelationScheme::new(
                "R",
                vec![
                    Attribute::new("A", Domain::Int),
                    Attribute::new("A", Domain::Int)
                ],
                &["A"]
            ),
            Err(Error::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn candidate_keys_primary_first() {
        let r = RelationScheme::with_candidate_keys(
            "R",
            vec![
                Attribute::new("A", Domain::Int),
                Attribute::new("B", Domain::Int),
            ],
            &[&["A"], &["B"]],
        )
        .unwrap();
        assert_eq!(r.primary_key(), ["A"]);
        assert_eq!(r.candidate_keys().len(), 2);
    }

    #[test]
    fn key_compatibility_is_positional_on_domains() {
        let a = RelationScheme::new(
            "A",
            vec![
                Attribute::new("A.K1", Domain::Int),
                Attribute::new("A.K2", Domain::Text),
            ],
            &["A.K1", "A.K2"],
        )
        .unwrap();
        let b = RelationScheme::new(
            "B",
            vec![
                Attribute::new("B.K1", Domain::Int),
                Attribute::new("B.K2", Domain::Text),
            ],
            &["B.K1", "B.K2"],
        )
        .unwrap();
        let c =
            RelationScheme::new("C", vec![Attribute::new("C.K", Domain::Int)], &["C.K"]).unwrap();
        assert!(a.key_compatible(&b));
        assert!(!a.key_compatible(&c));
    }

    #[test]
    fn extended_appends_attrs() {
        let w = works()
            .extended(&[Attribute::new("EXTRA", Domain::Int)])
            .unwrap();
        assert_eq!(w.attr_names().len(), 4);
        assert_eq!(w.primary_key(), ["W.SSN", "W.NR"]);
    }

    #[test]
    fn display_marks_key() {
        let w = works();
        assert_eq!(w.to_string(), "WORKS (_W.SSN_, _W.NR_, W.DATE)");
    }
}
