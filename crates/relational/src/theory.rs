//! Dependency theory beyond attribute closure: minimal covers, FD-set
//! equivalence and projection, and inference for inclusion dependencies.
//!
//! The paper's proofs lean on these classical results: Proposition 4.1(ii)
//! cites Chan–Atzeni \[3\] for *"the closure of F can be computed
//! independently of I"* (which holds for the key-based, acyclic
//! dependency sets `Merge` produces), and step 4(c) of Definition 4.1
//! drops inclusion dependencies *because they are implied* by the
//! total-equality and null-existence constraints — [`ind_implies`] provides
//! the pure-IND part of that reasoning (Casanova–Fagin–Papadimitriou
//! axioms: reflexivity, projection-and-permutation, transitivity).

use std::collections::BTreeSet;

use crate::fd::{Fd, FdSet};
use crate::ind::InclusionDep;

/// Whether two FD sets over the same relation-scheme imply each other.
#[must_use]
pub fn fd_sets_equivalent(a: &FdSet, b: &FdSet) -> bool {
    a.fds().iter().all(|fd| b.implies(fd)) && b.fds().iter().all(|fd| a.implies(fd))
}

/// A minimal (canonical) cover of the dependencies of `rel` within `set`:
/// singleton right-hand sides, no extraneous left-hand-side attributes, no
/// redundant dependencies. Classical three-phase algorithm.
#[must_use]
pub fn minimal_cover(set: &FdSet, rel: &str) -> FdSet {
    // Phase 1: split right-hand sides.
    let mut fds: Vec<Fd> = Vec::new();
    for fd in set.for_rel(rel) {
        for z in &fd.rhs {
            if !fd.lhs.contains(z) {
                let candidate = Fd {
                    rel: fd.rel.clone(),
                    lhs: fd.lhs.clone(),
                    rhs: vec![z.clone()],
                };
                if !fds.contains(&candidate) {
                    fds.push(candidate);
                }
            }
        }
    }
    // Phase 2: remove extraneous LHS attributes.
    let as_set = |fds: &[Fd]| -> FdSet {
        let mut s = FdSet::new();
        for fd in fds {
            s.push(fd.clone());
        }
        s
    };
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for i in 0..fds.len() {
            if fds[i].lhs.len() <= 1 {
                continue;
            }
            for drop in 0..fds[i].lhs.len() {
                let mut reduced = fds[i].clone();
                reduced.lhs.remove(drop);
                // X−A → Z must already follow from the current set.
                if as_set(&fds).implies(&reduced) {
                    fds[i] = reduced;
                    changed = true;
                    continue 'outer;
                }
            }
        }
    }
    // Phase 3: remove redundant dependencies.
    let mut i = 0;
    while i < fds.len() {
        let candidate = fds.remove(i);
        if as_set(&fds).implies(&candidate) {
            // Redundant: leave it out, don't advance.
        } else {
            fds.insert(i, candidate);
            i += 1;
        }
    }
    as_set(&fds)
}

/// Projection of the dependencies of `rel` onto the attribute subset
/// `attrs`: all implied FDs `X → A` with `X ∪ {A} ⊆ attrs`, returned as a
/// minimal cover. Exponential in `|attrs|` (standard); rejected above 16
/// attributes rather than silently truncating the subset walk.
pub fn project_fds(set: &FdSet, rel: &str, attrs: &[&str]) -> crate::error::Result<FdSet> {
    let mut out = FdSet::new();
    let n = attrs.len();
    if n > 16 {
        return Err(crate::error::Error::PreconditionViolated {
            procedure: "project_fds",
            detail: format!("{n} attributes (maximum 16 for the subset walk)"),
        });
    }
    // Enumerate subsets of `attrs` as LHS candidates.
    for mask in 0..(1u32 << n) {
        let lhs: Vec<&str> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| attrs[i])
            .collect();
        if lhs.is_empty() {
            continue;
        }
        let closure = set.closure(rel, &lhs);
        for a in attrs {
            if !lhs.contains(a) && closure.contains(*a) {
                out.push(Fd::new(rel, &lhs, &[a]));
            }
        }
    }
    Ok(minimal_cover(&out, rel))
}

/// Inference for inclusion dependencies (Casanova–Fagin–Papadimitriou):
/// whether `target` follows from `given` by reflexivity,
/// projection-and-permutation, and transitivity.
///
/// Implemented as a fixed-point saturation over the (finitely many)
/// attribute lists that appear in `given` and `target` — complete for the
/// pure-IND axioms.
#[must_use]
pub fn ind_implies(given: &[InclusionDep], target: &InclusionDep) -> bool {
    // Reflexivity.
    if target.lhs_rel == target.rhs_rel && target.lhs_attrs == target.rhs_attrs {
        return true;
    }
    // Saturate: start with `given` closed under projection/permutation
    // matching the *target's* shapes, then chain transitively.
    // We search for a derivation of target by BFS over "reachable"
    // (rel, attr-list) pairs from the target's LHS.
    let start = (target.lhs_rel.clone(), target.lhs_attrs.clone());
    let goal = (target.rhs_rel.clone(), target.rhs_attrs.clone());
    let mut reached: BTreeSet<(String, Vec<String>)> = BTreeSet::new();
    let mut frontier = vec![start];
    while let Some((rel, attrs)) = frontier.pop() {
        if !reached.insert((rel.clone(), attrs.clone())) {
            continue;
        }
        if rel == goal.0 && attrs == goal.1 {
            return true;
        }
        for ind in given {
            if ind.lhs_rel != rel {
                continue;
            }
            // Projection-and-permutation: if `attrs` is a sublist of
            // ind.lhs_attrs (as a positional selection), the corresponding
            // selection of ind.rhs_attrs is reachable.
            let positions: Option<Vec<usize>> = attrs
                .iter()
                .map(|a| ind.lhs_attrs.iter().position(|x| x == a))
                .collect();
            if let Some(pos) = positions {
                // Require distinct positions (a permutation-projection).
                let mut seen = BTreeSet::new();
                if pos.iter().all(|p| seen.insert(*p)) {
                    let image: Vec<String> =
                        pos.iter().map(|&p| ind.rhs_attrs[p].clone()).collect();
                    frontier.push((ind.rhs_rel.clone(), image));
                }
            }
        }
    }
    false
}

/// An **Armstrong relation** for the dependencies of `rel` over `attrs`:
/// a relation that satisfies an FD `Y → Z` (over `attrs`) **iff** the set
/// implies it. The classical construction: one base row of zeros plus one
/// row per closed attribute set `C`, agreeing with the base exactly on `C`
/// — agree-sets are then exactly the closed sets, so a dependency holds
/// iff its right-hand side is inside the closure of its left-hand side.
///
/// Exponential in `|attrs|`; rejected above 12 attributes (design-width
/// schemas only — this is a schema-exploration tool, not a data generator).
pub fn armstrong_relation(
    set: &FdSet,
    rel: &str,
    attrs: &[&str],
) -> crate::error::Result<crate::relation::Relation> {
    use crate::attribute::Attribute;
    use crate::domain::Domain;
    use crate::relation::Relation;
    use crate::value::{Tuple, Value};

    let n = attrs.len();
    if n > 12 {
        return Err(crate::error::Error::PreconditionViolated {
            procedure: "armstrong_relation",
            detail: format!("{n} attributes (maximum 12 for the lattice walk)"),
        });
    }
    // All closed sets, as bitmasks.
    let mut closed: BTreeSet<u32> = BTreeSet::new();
    for mask in 0..(1u32 << n) {
        let lhs: Vec<&str> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| attrs[i])
            .collect();
        let closure = set.closure(rel, &lhs);
        let cmask = (0..n)
            .filter(|i| closure.contains(attrs[*i]))
            .fold(0u32, |m, i| m | (1 << i));
        closed.insert(cmask);
    }
    let header: Vec<Attribute> = attrs
        .iter()
        .map(|a| Attribute::new(*a, Domain::Int))
        .collect();
    let mut relation = Relation::new(header)?;
    // Base row: all zeros.
    relation.insert(Tuple::new(vec![Value::Int(0); n]))?;
    // One row per closed set: zero inside C, globally-unique values outside.
    let mut fresh: i64 = 1;
    for cmask in closed {
        if cmask == (1u32 << n) - 1 {
            continue; // agrees everywhere with the base row: the base row
        }
        let values: Vec<Value> = (0..n)
            .map(|i| {
                if cmask & (1 << i) != 0 {
                    Value::Int(0)
                } else {
                    let v = Value::Int(fresh);
                    fresh += 1;
                    v
                }
            })
            .collect();
        relation.insert(Tuple::new(values))?;
    }
    Ok(relation)
}

/// The null-constraint interaction statement of §3: *"Null-existence,
/// total-equality, and part-null constraints do not interact with each
/// other"* — each family is closed under its own axioms only. This check
/// partitions a constraint list by family, for inference engines that must
/// not mix them.
#[must_use]
pub fn partition_null_constraints(
    constraints: &[crate::nullcon::NullConstraint],
) -> (
    Vec<&crate::nullcon::NullConstraint>,
    Vec<&crate::nullcon::NullConstraint>,
    Vec<&crate::nullcon::NullConstraint>,
) {
    use crate::nullcon::NullConstraint as N;
    let mut existence = Vec::new();
    let mut equality = Vec::new();
    let mut part_null = Vec::new();
    for c in constraints {
        match c {
            N::NullExistence { .. } | N::NullSync { .. } => existence.push(c),
            N::TotalEquality { .. } => equality.push(c),
            N::PartNull { .. } => part_null.push(c),
        }
    }
    (existence, equality, part_null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcon::NullConstraint;

    fn fd(lhs: &[&str], rhs: &[&str]) -> Fd {
        Fd::new("R", lhs, rhs)
    }

    fn set(fds: &[Fd]) -> FdSet {
        let mut s = FdSet::new();
        for f in fds {
            s.push(f.clone());
        }
        s
    }

    #[test]
    fn equivalence_detects_same_closure() {
        let a = set(&[fd(&["A"], &["B"]), fd(&["B"], &["C"])]);
        let b = set(&[fd(&["A"], &["B", "C"]), fd(&["B"], &["C"])]);
        assert!(fd_sets_equivalent(&a, &b));
        let c = set(&[fd(&["A"], &["B"])]);
        assert!(!fd_sets_equivalent(&a, &c));
    }

    #[test]
    fn minimal_cover_splits_and_prunes() {
        // A -> BC, B -> C, A -> C (redundant), AB -> C (extraneous B).
        let s = set(&[
            fd(&["A"], &["B", "C"]),
            fd(&["B"], &["C"]),
            fd(&["A"], &["C"]),
            fd(&["A", "B"], &["C"]),
        ]);
        let cover = minimal_cover(&s, "R");
        assert!(fd_sets_equivalent(&s, &cover));
        // Canonical form: singleton RHS, and A->C / AB->C eliminated.
        assert_eq!(cover.fds().len(), 2);
        for f in cover.fds() {
            assert_eq!(f.rhs.len(), 1);
        }
        assert!(cover.fds().contains(&fd(&["A"], &["B"])));
        assert!(cover.fds().contains(&fd(&["B"], &["C"])));
    }

    #[test]
    fn minimal_cover_reduces_lhs() {
        // AB -> C where already A -> B makes B extraneous? No: need A->C
        // derivable from {AB->C, A->B}: closure(A) = {A,B,C} — yes.
        let s = set(&[fd(&["A", "B"], &["C"]), fd(&["A"], &["B"])]);
        let cover = minimal_cover(&s, "R");
        assert!(fd_sets_equivalent(&s, &cover));
        assert!(cover.fds().contains(&fd(&["A"], &["C"])));
    }

    #[test]
    fn projection_finds_transitive_fd() {
        // R(A,B,C): A -> B, B -> C. Projecting onto {A, C} must yield A -> C.
        let s = set(&[fd(&["A"], &["B"]), fd(&["B"], &["C"])]);
        let proj = project_fds(&s, "R", &["A", "C"]).unwrap();
        assert!(proj.implies(&fd(&["A"], &["C"])));
        assert!(!proj.implies(&fd(&["C"], &["A"])));
        // Nothing mentions B.
        for f in proj.fds() {
            assert!(!f.lhs.contains(&"B".to_owned()));
            assert!(!f.rhs.contains(&"B".to_owned()));
        }
    }

    #[test]
    fn ind_reflexivity() {
        let t = InclusionDep::new("R", &["A", "B"], "R", &["A", "B"]);
        assert!(ind_implies(&[], &t));
    }

    #[test]
    fn ind_transitivity() {
        let given = [
            InclusionDep::new("A", &["A.X"], "B", &["B.X"]),
            InclusionDep::new("B", &["B.X"], "C", &["C.X"]),
        ];
        let t = InclusionDep::new("A", &["A.X"], "C", &["C.X"]);
        assert!(ind_implies(&given, &t));
        let reversed = InclusionDep::new("C", &["C.X"], "A", &["A.X"]);
        assert!(!ind_implies(&given, &reversed));
    }

    #[test]
    fn ind_projection_permutation() {
        let given = [InclusionDep::new(
            "A",
            &["A.X", "A.Y"],
            "B",
            &["B.X", "B.Y"],
        )];
        // Projection.
        assert!(ind_implies(
            &given,
            &InclusionDep::new("A", &["A.X"], "B", &["B.X"])
        ));
        // Permutation.
        assert!(ind_implies(
            &given,
            &InclusionDep::new("A", &["A.Y", "A.X"], "B", &["B.Y", "B.X"])
        ));
        // Mixing columns is NOT implied.
        assert!(!ind_implies(
            &given,
            &InclusionDep::new("A", &["A.X"], "B", &["B.Y"])
        ));
        // Repetition is not a permutation-projection.
        assert!(!ind_implies(
            &given,
            &InclusionDep::new("A", &["A.X", "A.X"], "B", &["B.X", "B.X"])
        ));
    }

    #[test]
    fn merge_step_4c_justification() {
        // The inclusion dependencies Definition 4.1 step 4(c) removes are
        // implied: after merging, Rm[Ki] ⊆ Rm[Km] follows from the
        // total-equality constraint — here we verify the *chain* case at
        // the IND level: OFFER ⊆ COURSE and TEACH ⊆ OFFER imply
        // TEACH ⊆ COURSE, so collapsing the chain loses nothing.
        let given = [
            InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]),
            InclusionDep::new("TEACH", &["T.C.NR"], "OFFER", &["O.C.NR"]),
        ];
        assert!(ind_implies(
            &given,
            &InclusionDep::new("TEACH", &["T.C.NR"], "COURSE", &["C.NR"])
        ));
    }

    #[test]
    fn armstrong_relation_exactness() {
        // A -> B, C -> D over {A,B,C,D}: the Armstrong relation satisfies
        // exactly the implied dependencies.
        let s = set(&[fd(&["A"], &["B"]), fd(&["C"], &["D"])]);
        let attrs = ["A", "B", "C", "D"];
        let r = armstrong_relation(&s, "R", &attrs).unwrap();
        // Exhaustive check over every nonempty LHS/RHS pair.
        for lmask in 0u32..16 {
            for rmask in 1u32..16 {
                let lhs: Vec<&str> = (0..4)
                    .filter(|i| lmask & (1 << i) != 0)
                    .map(|i| attrs[i])
                    .collect();
                let rhs: Vec<&str> = (0..4)
                    .filter(|i| rmask & (1 << i) != 0)
                    .map(|i| attrs[i])
                    .collect();
                let candidate = Fd::new("R", &lhs, &rhs);
                assert_eq!(
                    candidate.satisfied_by(&r).unwrap(),
                    s.implies(&candidate),
                    "disagreement on {candidate}"
                );
            }
        }
    }

    #[test]
    fn armstrong_relation_rejects_wide_schemas() {
        let attrs: Vec<String> = (0..13).map(|i| format!("A{i}")).collect();
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        assert!(armstrong_relation(&FdSet::new(), "R", &refs).is_err());
    }

    #[test]
    fn null_constraint_partition() {
        let cs = vec![
            NullConstraint::nna("R", &["A"]),
            NullConstraint::ns("R", &["A", "B"]),
            NullConstraint::te("R", &["A"], &["B"]),
            NullConstraint::pn("R", &[&["A"], &["B"]]),
        ];
        let (e, q, p) = partition_null_constraints(&cs);
        assert_eq!(e.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(p.len(), 1);
    }
}
