//! Null constraints (paper §3): null-existence, nulls-not-allowed,
//! null-synchronization sets, part-null, and total-equality constraints —
//! with satisfaction checking and inference engines.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::scheme::RelationScheme;

/// A single-tuple restriction on where and how nulls may appear in a
/// relation (paper §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NullConstraint {
    /// Null-existence constraint `R : Y ⊑ Z` — *"t\[Y\] is total only if
    /// t\[Z\] is total"*. With empty `Y` this is the **nulls-not-allowed**
    /// constraint `R : ∅ ⊑ Z` (every `t[Z]` must be total), the only form
    /// all relational DBMSs support declaratively (§5.1).
    NullExistence {
        /// Relation-scheme the constraint applies to.
        rel: String,
        /// Left-hand side `Y` (empty for nulls-not-allowed).
        lhs: Vec<String>,
        /// Right-hand side `Z`.
        rhs: Vec<String>,
    },
    /// Null-synchronization set `R : NS(Y)` — every `t[Y]` is either total
    /// or entirely null. Semantically the set `{R : A ⊑ Y | A ∈ Y}`, but
    /// kept first-class because `Merge` generates it and the figures print
    /// it as `NS(…)`.
    NullSync {
        /// Relation-scheme the constraint applies to.
        rel: String,
        /// The synchronized attribute set `Y`.
        attrs: Vec<String>,
    },
    /// Part-null constraint `R : PN(Y₁, …, Yₘ)` — in every tuple at least
    /// one subtuple `t[Yⱼ]` is total.
    PartNull {
        /// Relation-scheme the constraint applies to.
        rel: String,
        /// The groups `Y₁ … Yₘ`.
        groups: Vec<Vec<String>>,
    },
    /// Total-equality constraint `R : Y =⊥ Z` — whenever `t[Y]` and `t[Z]`
    /// are both total they are equal (positionally).
    TotalEquality {
        /// Relation-scheme the constraint applies to.
        rel: String,
        /// Left attribute list `Y`.
        lhs: Vec<String>,
        /// Right attribute list `Z` (same arity, compatible).
        rhs: Vec<String>,
    },
}

fn owned(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| (*s).to_owned()).collect()
}

impl NullConstraint {
    /// Null-existence constraint `rel : lhs ⊑ rhs`.
    pub fn ne(rel: impl Into<String>, lhs: &[&str], rhs: &[&str]) -> Self {
        NullConstraint::NullExistence {
            rel: rel.into(),
            lhs: owned(lhs),
            rhs: owned(rhs),
        }
    }

    /// Nulls-not-allowed constraint `rel : ∅ ⊑ attrs`.
    pub fn nna(rel: impl Into<String>, attrs: &[&str]) -> Self {
        Self::ne(rel, &[], attrs)
    }

    /// Null-synchronization set `rel : NS(attrs)`.
    pub fn ns(rel: impl Into<String>, attrs: &[&str]) -> Self {
        NullConstraint::NullSync {
            rel: rel.into(),
            attrs: owned(attrs),
        }
    }

    /// Part-null constraint `rel : PN(groups…)`.
    pub fn pn(rel: impl Into<String>, groups: &[&[&str]]) -> Self {
        NullConstraint::PartNull {
            rel: rel.into(),
            groups: groups.iter().map(|g| owned(g)).collect(),
        }
    }

    /// Total-equality constraint `rel : lhs =⊥ rhs`.
    pub fn te(rel: impl Into<String>, lhs: &[&str], rhs: &[&str]) -> Self {
        NullConstraint::TotalEquality {
            rel: rel.into(),
            lhs: owned(lhs),
            rhs: owned(rhs),
        }
    }

    /// The relation-scheme this constraint is scoped to.
    #[must_use]
    pub fn rel(&self) -> &str {
        match self {
            NullConstraint::NullExistence { rel, .. }
            | NullConstraint::NullSync { rel, .. }
            | NullConstraint::PartNull { rel, .. }
            | NullConstraint::TotalEquality { rel, .. } => rel,
        }
    }

    /// Whether this is a nulls-not-allowed constraint (`∅ ⊑ Z`) — the only
    /// form with declarative support in every DBMS the paper surveys.
    #[must_use]
    pub fn is_nna(&self) -> bool {
        matches!(self, NullConstraint::NullExistence { lhs, .. } if lhs.is_empty())
    }

    /// All attributes mentioned by the constraint.
    #[must_use]
    pub fn attrs(&self) -> BTreeSet<&str> {
        match self {
            NullConstraint::NullExistence { lhs, rhs, .. }
            | NullConstraint::TotalEquality { lhs, rhs, .. } => {
                lhs.iter().chain(rhs).map(String::as_str).collect()
            }
            NullConstraint::NullSync { attrs, .. } => attrs.iter().map(String::as_str).collect(),
            NullConstraint::PartNull { groups, .. } => {
                groups.iter().flatten().map(String::as_str).collect()
            }
        }
    }

    /// Whether the constraint is trivially satisfied by every relation and
    /// can be dropped (paper, proof of Prop 5.2: *"null-existence
    /// constraints with empty right-hand sides are trivially satisfied"*).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        match self {
            NullConstraint::NullExistence { lhs, rhs, .. } => {
                rhs.is_empty() || rhs.iter().all(|z| lhs.contains(z))
            }
            NullConstraint::NullSync { attrs, .. } => attrs.len() <= 1,
            NullConstraint::PartNull { groups, .. } => {
                groups.is_empty() || groups.iter().any(Vec::is_empty)
            }
            NullConstraint::TotalEquality { lhs, rhs, .. } => lhs.is_empty() || lhs == rhs,
        }
    }

    /// Whether `r` satisfies the constraint.
    pub fn satisfied_by(&self, r: &Relation) -> Result<bool> {
        match self {
            NullConstraint::NullExistence { lhs, rhs, .. } => {
                let lpos = positions(r, lhs)?;
                let rpos = positions(r, rhs)?;
                Ok(r.iter()
                    .all(|t| !t.is_total_at(&lpos) || t.is_total_at(&rpos)))
            }
            NullConstraint::NullSync { attrs, .. } => {
                let pos = positions(r, attrs)?;
                Ok(r.iter()
                    .all(|t| t.is_total_at(&pos) || t.is_all_null_at(&pos)))
            }
            NullConstraint::PartNull { groups, .. } => {
                let group_pos: Vec<Vec<usize>> = groups
                    .iter()
                    .map(|g| positions(r, g))
                    .collect::<Result<_>>()?;
                Ok(r.iter().all(|t| group_pos.iter().any(|g| t.is_total_at(g))))
            }
            NullConstraint::TotalEquality { lhs, rhs, .. } => {
                let lpos = positions(r, lhs)?;
                let rpos = positions(r, rhs)?;
                Ok(r.iter().all(|t| {
                    !(t.is_total_at(&lpos) && t.is_total_at(&rpos)) || t.eq_at(&lpos, &rpos)
                }))
            }
        }
    }

    /// Validates attribute references (and, for total-equality, arity and
    /// domain compatibility) against the scheme.
    pub fn validate(&self, scheme: &RelationScheme) -> Result<()> {
        for a in self.attrs() {
            if !scheme.has_attr(a) {
                return Err(Error::MalformedConstraint {
                    detail: format!("null constraint `{self}` mentions unknown attribute `{a}`"),
                });
            }
        }
        if let NullConstraint::TotalEquality { lhs, rhs, .. } = self {
            if lhs.len() != rhs.len() {
                return Err(Error::MalformedConstraint {
                    detail: format!("total-equality `{self}` has mismatched arity"),
                });
            }
            for (y, z) in lhs.iter().zip(rhs) {
                let (ya, za) = (
                    scheme.attr(y).expect("checked above"),
                    scheme.attr(z).expect("checked above"),
                );
                if !ya.compatible(za) {
                    return Err(Error::MalformedConstraint {
                        detail: format!("total-equality `{self}`: `{y}` / `{z}` incompatible"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Expands a null-synchronization set into its defining null-existence
    /// constraints `{R : A ⊑ Y | A ∈ Y}`; other constraints expand to
    /// themselves.
    #[must_use]
    pub fn expand(&self) -> Vec<NullConstraint> {
        match self {
            NullConstraint::NullSync { rel, attrs } => attrs
                .iter()
                .map(|a| NullConstraint::NullExistence {
                    rel: rel.clone(),
                    lhs: vec![a.clone()],
                    rhs: attrs.clone(),
                })
                .collect(),
            other => vec![other.clone()],
        }
    }

    /// Projects the constraint onto the attributes that survive removal of
    /// `removed` (the `Remove` procedure's step 4a). Returns `None` when
    /// the surviving constraint is trivial.
    #[must_use]
    pub fn remove_attrs(&self, removed: &HashSet<&str>) -> Option<NullConstraint> {
        let keep = |v: &[String]| -> Vec<String> {
            v.iter()
                .filter(|a| !removed.contains(a.as_str()))
                .cloned()
                .collect()
        };
        let out = match self {
            NullConstraint::NullExistence { rel, lhs, rhs } => NullConstraint::NullExistence {
                rel: rel.clone(),
                lhs: keep(lhs),
                rhs: keep(rhs),
            },
            NullConstraint::NullSync { rel, attrs } => NullConstraint::NullSync {
                rel: rel.clone(),
                attrs: keep(attrs),
            },
            NullConstraint::PartNull { rel, groups } => NullConstraint::PartNull {
                rel: rel.clone(),
                groups: groups.iter().map(|g| keep(g)).collect(),
            },
            // Total-equality constraints are removed wholesale by step 4b,
            // never projected; keep them intact if untouched.
            NullConstraint::TotalEquality { rel, lhs, rhs } => {
                if lhs.iter().chain(rhs).any(|a| removed.contains(a.as_str())) {
                    return None;
                }
                NullConstraint::TotalEquality {
                    rel: rel.clone(),
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                }
            }
        };
        if out.is_trivial() {
            None
        } else {
            Some(out)
        }
    }
}

fn positions(r: &Relation, names: &[String]) -> Result<Vec<usize>> {
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    r.positions(&refs)
}

impl fmt::Display for NullConstraint {
    /// Renders in the paper's notation: `R: Y E-> Z` (⊑ spelled `E->`),
    /// `R: 0 E-> Z` for nulls-not-allowed, `R: NS(...)`, `R: PN({..},{..})`,
    /// `R: Y =# Z` for total equality (`=⊥` spelled `=#`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NullConstraint::NullExistence { rel, lhs, rhs } => {
                let l = if lhs.is_empty() {
                    "0".to_owned()
                } else {
                    lhs.join(",")
                };
                write!(f, "{rel}: {l} E-> {}", rhs.join(","))
            }
            NullConstraint::NullSync { rel, attrs } => {
                write!(f, "{rel}: NS({})", attrs.join(","))
            }
            NullConstraint::PartNull { rel, groups } => {
                let gs: Vec<String> = groups
                    .iter()
                    .map(|g| format!("{{{}}}", g.join(",")))
                    .collect();
                write!(f, "{rel}: PN({})", gs.join(", "))
            }
            NullConstraint::TotalEquality { rel, lhs, rhs } => {
                write!(f, "{rel}: {} =# {}", lhs.join(","), rhs.join(","))
            }
        }
    }
}

/// Inference engine for **null-existence** constraints.
///
/// Paper §3: *"Inference axioms for null-existence constraints have the form
/// of the inference axioms for functional dependencies"* — reflexivity,
/// augmentation, transitivity. We therefore reuse the attribute-closure
/// fixed point: `closure(Y)` is the largest `Z` with `Y ⊑ Z` derivable.
/// Null-synchronization sets participate through their expansion.
#[must_use]
pub fn ne_closure(constraints: &[NullConstraint], rel: &str, start: &[&str]) -> BTreeSet<String> {
    let expanded: Vec<NullConstraint> = constraints
        .iter()
        .filter(|c| c.rel() == rel)
        .flat_map(NullConstraint::expand)
        .collect();
    let mut closure: BTreeSet<String> = start.iter().map(|s| (*s).to_owned()).collect();
    loop {
        let mut grew = false;
        for c in &expanded {
            if let NullConstraint::NullExistence { lhs, rhs, .. } = c {
                if lhs.iter().all(|a| closure.contains(a)) {
                    for z in rhs {
                        if closure.insert(z.clone()) {
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            return closure;
        }
    }
}

/// Whether the null-existence constraint `rel : lhs ⊑ rhs` is implied by
/// `constraints` (reflexivity + augmentation + transitivity closure).
#[must_use]
pub fn ne_implies(constraints: &[NullConstraint], rel: &str, lhs: &[&str], rhs: &[&str]) -> bool {
    let closure = ne_closure(constraints, rel, lhs);
    rhs.iter().all(|z| closure.contains(*z) || lhs.contains(z))
}

/// Inference engine for **total-equality** constraints.
///
/// Paper §3: analogous to Klug's equality constraints — reflexive,
/// symmetric, transitive on attribute pairs. In the presence of nulls,
/// however, *unrestricted* transitivity is unsound: from `A =⊥ B` and
/// `B =⊥ C`, the tuple `(A=0, B=null, C=1)` satisfies both premises but
/// not `A =⊥ C`. The transitive step is sound only when the pivot
/// attribute (`B`) is known non-null — which is exactly the situation in
/// `Merge`'s output, where every generated constraint pivots on the
/// nulls-not-allowed key `Km`. The closure therefore takes the set of
/// non-null attributes and derives `a =⊥ b` only along paths whose
/// *interior* vertices are all non-null.
#[derive(Debug)]
pub struct TotalEqualityClosure {
    attrs: Vec<String>,
    /// Adjacency: declared (symmetric) pairs.
    edges: Vec<Vec<usize>>,
    /// Whether each attribute may be chained *through*.
    non_null: Vec<bool>,
}

impl TotalEqualityClosure {
    /// Builds the closure of all total-equality constraints on `rel`,
    /// allowing transitive chaining only through the attributes named in
    /// `non_null` (typically those under nulls-not-allowed constraints).
    #[must_use]
    pub fn new_with_non_null(
        constraints: &[NullConstraint],
        rel: &str,
        non_null: &BTreeSet<String>,
    ) -> Self {
        let mut attrs: Vec<String> = Vec::new();
        let index = |attrs: &mut Vec<String>, name: &str| -> usize {
            if let Some(i) = attrs.iter().position(|a| a == name) {
                i
            } else {
                attrs.push(name.to_owned());
                attrs.len() - 1
            }
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for c in constraints.iter().filter(|c| c.rel() == rel) {
            if let NullConstraint::TotalEquality { lhs, rhs, .. } = c {
                for (y, z) in lhs.iter().zip(rhs) {
                    let yi = index(&mut attrs, y);
                    let zi = index(&mut attrs, z);
                    pairs.push((yi, zi));
                }
            }
        }
        let mut edges = vec![Vec::new(); attrs.len()];
        for (a, b) in pairs {
            edges[a].push(b);
            edges[b].push(a);
        }
        let non_null = attrs.iter().map(|a| non_null.contains(a)).collect();
        TotalEqualityClosure {
            attrs,
            edges,
            non_null,
        }
    }

    /// Builds a closure that performs **no** transitive chaining (no
    /// attribute assumed non-null): only declared pairs and reflexivity.
    #[must_use]
    pub fn new(constraints: &[NullConstraint], rel: &str) -> Self {
        Self::new_with_non_null(constraints, rel, &BTreeSet::new())
    }

    /// Whether `a =⊥ b` is implied: reflexivity, a declared (symmetric)
    /// pair, or a path whose interior vertices are all non-null.
    #[must_use]
    pub fn equivalent(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        let (Some(start), Some(goal)) = (
            self.attrs.iter().position(|x| x == a),
            self.attrs.iter().position(|x| x == b),
        ) else {
            return false;
        };
        // BFS; a vertex may be *expanded* (used as an interior pivot) only
        // if it is non-null. The goal may be reached regardless.
        let mut visited = vec![false; self.attrs.len()];
        let mut frontier = vec![start];
        visited[start] = true;
        while let Some(v) = frontier.pop() {
            for &next in &self.edges[v] {
                if next == goal {
                    return true;
                }
                if !visited[next] && self.non_null[next] {
                    visited[next] = true;
                    frontier.push(next);
                }
            }
        }
        false
    }

    /// Whether the pairwise constraint `lhs =⊥ rhs` is implied.
    #[must_use]
    pub fn implies(&self, lhs: &[&str], rhs: &[&str]) -> bool {
        lhs.len() == rhs.len() && lhs.iter().zip(rhs).all(|(y, z)| self.equivalent(y, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::Domain;
    use crate::value::{Tuple, Value};

    fn r4(rows: &[[Value; 4]]) -> Relation {
        Relation::with_rows(
            vec![
                Attribute::new("A", Domain::Int),
                Attribute::new("B", Domain::Int),
                Attribute::new("C", Domain::Int),
                Attribute::new("D", Domain::Int),
            ],
            rows.iter().map(|r| Tuple::new(r.to_vec())),
        )
        .unwrap()
    }

    const N: Value = Value::Null;
    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn null_existence_semantics() {
        // A ⊑ B: non-null A requires non-null B (paper: DATE E-> NR).
        let c = NullConstraint::ne("R", &["A"], &["B"]);
        assert!(c.satisfied_by(&r4(&[[i(1), i(2), N, N]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[N, N, N, N]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[N, i(2), N, N]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[i(1), N, N, N]])).unwrap());
    }

    #[test]
    fn nna_semantics() {
        let c = NullConstraint::nna("R", &["A", "B"]);
        assert!(c.is_nna());
        assert!(c.satisfied_by(&r4(&[[i(1), i(2), N, N]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[i(1), N, N, N]])).unwrap());
    }

    #[test]
    fn null_sync_semantics() {
        let c = NullConstraint::ns("R", &["A", "B"]);
        assert!(c.satisfied_by(&r4(&[[i(1), i(2), N, N]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[N, N, i(3), N]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[i(1), N, N, N]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[N, i(2), N, N]])).unwrap());
    }

    #[test]
    fn part_null_semantics() {
        let c = NullConstraint::pn("R", &[&["A", "B"], &["C", "D"]]);
        assert!(c.satisfied_by(&r4(&[[i(1), i(2), N, N]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[N, N, i(3), i(4)]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[i(1), i(2), i(3), i(4)]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[i(1), N, i(3), N]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[N, N, N, N]])).unwrap());
    }

    #[test]
    fn total_equality_semantics() {
        let c = NullConstraint::te("R", &["A"], &["B"]);
        assert!(c.satisfied_by(&r4(&[[i(1), i(1), N, N]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[i(1), N, N, N]])).unwrap());
        assert!(c.satisfied_by(&r4(&[[N, i(2), N, N]])).unwrap());
        assert!(!c.satisfied_by(&r4(&[[i(1), i(2), N, N]])).unwrap());
    }

    #[test]
    fn ns_expansion() {
        let c = NullConstraint::ns("R", &["A", "B"]);
        let expanded = c.expand();
        assert_eq!(expanded.len(), 2);
        assert!(expanded.contains(&NullConstraint::ne("R", &["A"], &["A", "B"])));
        assert!(expanded.contains(&NullConstraint::ne("R", &["B"], &["A", "B"])));
        // Expansion is semantically equivalent.
        for rel in [
            r4(&[[i(1), i(2), N, N]]),
            r4(&[[N, N, N, N]]),
            r4(&[[i(1), N, N, N]]),
        ] {
            let direct = c.satisfied_by(&rel).unwrap();
            let via_expansion = expanded.iter().all(|e| e.satisfied_by(&rel).unwrap());
            assert_eq!(direct, via_expansion);
        }
    }

    #[test]
    fn triviality_rules() {
        assert!(NullConstraint::ne("R", &["A"], &[]).is_trivial());
        assert!(NullConstraint::ne("R", &["A", "B"], &["A"]).is_trivial());
        assert!(!NullConstraint::nna("R", &["A"]).is_trivial());
        assert!(NullConstraint::ns("R", &["A"]).is_trivial());
        assert!(!NullConstraint::ns("R", &["A", "B"]).is_trivial());
        assert!(NullConstraint::pn("R", &[&["A"], &[]]).is_trivial());
        assert!(!NullConstraint::pn("R", &[&["A"], &["B"]]).is_trivial());
        assert!(NullConstraint::te("R", &["A"], &["A"]).is_trivial());
    }

    #[test]
    fn remove_attrs_projects_constraints() {
        // The Figure 6 simplifications.
        let removed: HashSet<&str> = ["O.C.NR", "T.C.NR", "A.C.NR"].into();
        let ns = NullConstraint::ns("C", &["O.C.NR", "O.D.NAME"]);
        assert_eq!(ns.remove_attrs(&removed), None); // singleton → trivial
        let ne = NullConstraint::ne("C", &["T.C.NR", "T.F.SSN"], &["O.C.NR", "O.D.NAME"]);
        assert_eq!(
            ne.remove_attrs(&removed),
            Some(NullConstraint::ne("C", &["T.F.SSN"], &["O.D.NAME"]))
        );
        let nna = NullConstraint::nna("C", &["C.NR"]);
        assert_eq!(nna.remove_attrs(&removed), Some(nna.clone()));
        let te = NullConstraint::te("C", &["C.NR"], &["O.C.NR"]);
        assert_eq!(te.remove_attrs(&removed), None);
    }

    #[test]
    fn ne_inference_closure() {
        let cons = vec![
            NullConstraint::ne("R", &["A"], &["B"]),
            NullConstraint::ne("R", &["B"], &["C"]),
            NullConstraint::ne("S", &["C"], &["D"]),
        ];
        let c = ne_closure(&cons, "R", &["A"]);
        assert!(c.contains("C"));
        assert!(!c.contains("D"));
        assert!(ne_implies(&cons, "R", &["A"], &["C"]));
        assert!(!ne_implies(&cons, "R", &["C"], &["A"]));
        // Reflexivity.
        assert!(ne_implies(&cons, "R", &["A"], &["A"]));
    }

    #[test]
    fn nna_in_closure() {
        let cons = vec![NullConstraint::nna("R", &["K"])];
        // ∅ ⊑ K means K is in every closure, even of the empty set.
        assert!(ne_implies(&cons, "R", &[], &["K"]));
        assert!(ne_implies(&cons, "R", &["X"], &["K"]));
    }

    #[test]
    fn total_equality_inference_needs_non_null_pivot() {
        let cons = vec![
            NullConstraint::te("R", &["A"], &["B"]),
            NullConstraint::te("R", &["B"], &["C"]),
        ];
        // Without knowing B is non-null, transitivity would be unsound:
        // the tuple (A=0, B=null, C=1) satisfies both premises but not
        // A =# C. The closure must therefore refuse it.
        let naive = TotalEqualityClosure::new(&cons, "R");
        assert!(!naive.equivalent("A", "C"));
        assert!(naive.equivalent("A", "B")); // declared pair
        assert!(naive.equivalent("B", "A")); // symmetry
        assert!(naive.equivalent("D", "D")); // reflexivity

        // With B declared non-null, the pivot is safe.
        let non_null: BTreeSet<String> = ["B".to_owned()].into();
        let closure = TotalEqualityClosure::new_with_non_null(&cons, "R", &non_null);
        assert!(closure.equivalent("A", "C"));
        assert!(closure.equivalent("C", "A"));
        assert!(!closure.equivalent("A", "D"));
        assert!(closure.implies(&["A", "B"], &["C", "C"]));
        assert!(!closure.implies(&["A"], &["D"]));
    }

    #[test]
    fn total_equality_transitivity_counterexample() {
        // The concrete witness that unrestricted transitivity fails.
        let r = r4(&[[i(0), N, i(1), N]]);
        let ab = NullConstraint::te("R", &["A"], &["B"]);
        let bc = NullConstraint::te("R", &["B"], &["C"]);
        let ac = NullConstraint::te("R", &["A"], &["C"]);
        assert!(ab.satisfied_by(&r).unwrap());
        assert!(bc.satisfied_by(&r).unwrap());
        assert!(!ac.satisfied_by(&r).unwrap());
    }

    #[test]
    fn display_notation() {
        assert_eq!(
            NullConstraint::ne("W", &["DATE"], &["NR"]).to_string(),
            "W: DATE E-> NR"
        );
        assert_eq!(
            NullConstraint::nna("P", &["SSN"]).to_string(),
            "P: 0 E-> SSN"
        );
        assert_eq!(
            NullConstraint::ns("A", &["T.CN", "T.FN"]).to_string(),
            "A: NS(T.CN,T.FN)"
        );
        assert_eq!(
            NullConstraint::te("A", &["T.CN"], &["O.CN"]).to_string(),
            "A: T.CN =# O.CN"
        );
        assert_eq!(
            NullConstraint::pn("A", &[&["X"], &["Y"]]).to_string(),
            "A: PN({X}, {Y})"
        );
    }
}
