//! Attributes and attribute-set correspondences.

use std::fmt;
use std::sync::Arc;

use crate::domain::Domain;
use crate::error::{Error, Result};

/// A named, typed attribute.
///
/// The paper assumes *"the attributes are assigned globally unique names in
/// the schema"* (Definition 4.1); we follow the figures and use dotted names
/// such as `O.C.NR` ("attribute `C.NR` as it appears in relation-scheme
/// `OFFER`"). The name is reference-counted so that attributes can be shared
/// between schemes, relations, and constraints without repeated allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute {
    name: Arc<str>,
    domain: Domain,
}

impl Attribute {
    /// Creates an attribute with the given globally-unique name and domain.
    pub fn new(name: impl Into<Arc<str>>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// The attribute's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A clone of the reference-counted name (cheap).
    #[must_use]
    pub fn name_arc(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// The attribute's domain.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Whether this attribute is compatible with `other` (paper §2:
    /// associated with the same domain).
    #[must_use]
    pub fn compatible(&self, other: &Attribute) -> bool {
        self.domain.compatible(other.domain)
    }

    /// Returns a copy of this attribute renamed to `name` (same domain) —
    /// the building block of the algebra's `rename` operator.
    pub fn renamed(&self, name: impl Into<Arc<str>>) -> Attribute {
        Attribute {
            name: name.into(),
            domain: self.domain,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// An explicit one-to-one correspondence between two compatible attribute
/// sets (paper §2: *"attribute sets X and Y are said to be compatible iff
/// there exists a one-to-one correspondence of compatible attributes between
/// X and Y"*).
///
/// Order matters: `left[i]` corresponds to `right[i]`. All paper constructs
/// that relate two attribute sets — inclusion dependencies, total-equality
/// constraints, renamings, join conditions — carry such a correspondence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrCorrespondence {
    pairs: Vec<(Arc<str>, Arc<str>)>,
}

impl AttrCorrespondence {
    /// Builds a correspondence from parallel name lists, verifying arity and
    /// pairwise domain compatibility against the providing attribute slices.
    pub fn new(left: &[Attribute], right: &[Attribute]) -> Result<Self> {
        if left.len() != right.len() {
            return Err(Error::IncompatibleAttributes {
                detail: format!(
                    "arity mismatch: {} vs {}",
                    names(left).join(","),
                    names(right).join(",")
                ),
            });
        }
        for (l, r) in left.iter().zip(right) {
            if !l.compatible(r) {
                return Err(Error::IncompatibleAttributes {
                    detail: format!(
                        "`{}` ({}) vs `{}` ({})",
                        l.name(),
                        l.domain(),
                        r.name(),
                        r.domain()
                    ),
                });
            }
        }
        Ok(AttrCorrespondence {
            pairs: left
                .iter()
                .zip(right)
                .map(|(l, r)| (l.name_arc(), r.name_arc()))
                .collect(),
        })
    }

    /// The ordered pairs `(left, right)` of corresponding attribute names.
    #[must_use]
    pub fn pairs(&self) -> &[(Arc<str>, Arc<str>)] {
        &self.pairs
    }

    /// Left-hand attribute names, in order.
    pub fn left(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(l, _)| &**l)
    }

    /// Right-hand attribute names, in order.
    pub fn right(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(_, r)| &**r)
    }

    /// Number of attribute pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the correspondence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Names of a slice of attributes, in order. Small helper used pervasively
/// in diagnostics and display code.
#[must_use]
pub fn names(attrs: &[Attribute]) -> Vec<String> {
    attrs.iter().map(|a| a.name().to_owned()).collect()
}

/// Looks up the position of `name` within `attrs`.
pub fn position(attrs: &[Attribute], name: &str) -> Option<usize> {
    attrs.iter().position(|a| a.name() == name)
}

/// Resolves each of `wanted` to its position in `attrs`, failing with
/// [`Error::UnknownAttribute`] on the first miss.
pub fn positions(attrs: &[Attribute], wanted: &[&str], context: &str) -> Result<Vec<usize>> {
    wanted
        .iter()
        .map(|w| {
            position(attrs, w).ok_or_else(|| Error::UnknownAttribute {
                attribute: (*w).to_owned(),
                context: context.to_owned(),
            })
        })
        .collect()
}

/// Whether two attribute slices are compatible as *sets* in the paper's
/// sense: equal arity with pairwise compatible domains under the given
/// (positional) correspondence.
#[must_use]
pub fn compatible_sets(left: &[Attribute], right: &[Attribute]) -> bool {
    left.len() == right.len() && left.iter().zip(right).all(|(l, r)| l.compatible(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(name: &str, d: Domain) -> Attribute {
        Attribute::new(name, d)
    }

    #[test]
    fn attribute_accessors() {
        let ssn = a("E.SSN", Domain::Int);
        assert_eq!(ssn.name(), "E.SSN");
        assert_eq!(ssn.domain(), Domain::Int);
        assert_eq!(ssn.to_string(), "E.SSN");
    }

    #[test]
    fn renamed_keeps_domain() {
        let ssn = a("E.SSN", Domain::Int);
        let m = ssn.renamed("M.SSN");
        assert_eq!(m.name(), "M.SSN");
        assert_eq!(m.domain(), Domain::Int);
    }

    #[test]
    fn compatibility_ignores_names() {
        assert!(a("X", Domain::Text).compatible(&a("Y", Domain::Text)));
        assert!(!a("X", Domain::Text).compatible(&a("X", Domain::Int)));
    }

    #[test]
    fn correspondence_rejects_arity_mismatch() {
        let l = [a("A", Domain::Int)];
        let r = [a("B", Domain::Int), a("C", Domain::Int)];
        assert!(AttrCorrespondence::new(&l, &r).is_err());
    }

    #[test]
    fn correspondence_rejects_domain_mismatch() {
        let l = [a("A", Domain::Int)];
        let r = [a("B", Domain::Text)];
        assert!(AttrCorrespondence::new(&l, &r).is_err());
    }

    #[test]
    fn correspondence_pairs_in_order() {
        let l = [a("A", Domain::Int), a("B", Domain::Text)];
        let r = [a("C", Domain::Int), a("D", Domain::Text)];
        let c = AttrCorrespondence::new(&l, &r).unwrap();
        assert_eq!(c.len(), 2);
        let pairs: Vec<(&str, &str)> = c.pairs().iter().map(|(x, y)| (&**x, &**y)).collect();
        assert_eq!(pairs, vec![("A", "C"), ("B", "D")]);
        assert_eq!(c.left().collect::<Vec<_>>(), ["A", "B"]);
        assert_eq!(c.right().collect::<Vec<_>>(), ["C", "D"]);
    }

    #[test]
    fn positions_resolve_and_fail() {
        let attrs = [a("A", Domain::Int), a("B", Domain::Text)];
        assert_eq!(positions(&attrs, &["B", "A"], "t").unwrap(), vec![1, 0]);
        let err = positions(&attrs, &["Z"], "t").unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute { .. }));
    }

    #[test]
    fn compatible_sets_checks_pairwise() {
        let l = [a("A", Domain::Int), a("B", Domain::Text)];
        let ok = [a("C", Domain::Int), a("D", Domain::Text)];
        let bad = [a("C", Domain::Text), a("D", Domain::Int)];
        assert!(compatible_sets(&l, &ok));
        assert!(!compatible_sets(&l, &bad));
        assert!(!compatible_sets(&l, &ok[..1]));
    }
}
