//! Values and tuples, with first-class null.

use std::fmt;
use std::sync::Arc;

use crate::domain::Domain;

/// A single attribute value, possibly null.
///
/// The paper (and the 1989-era DBMSs it targets — §5.1 notes SYBASE and
/// INGRES "consider all null values as identical") uses a single
/// undifferentiated null, so [`Value::Null`] compares equal to itself and
/// hashes consistently; relations remain genuine sets of tuples.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The (unique) null value, written `null` in the paper.
    Null,
    /// An integer.
    Int(i64),
    /// A text string.
    Text(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A date as days since an arbitrary epoch.
    Date(i64),
}

impl Value {
    /// Builds a text value.
    pub fn text(s: impl Into<Arc<str>>) -> Value {
        Value::Text(s.into())
    }

    /// Whether this value is null.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The domain this value belongs to, or `None` for null (null belongs
    /// to every domain).
    #[must_use]
    pub fn domain(&self) -> Option<Domain> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(Domain::Int),
            Value::Text(_) => Some(Domain::Text),
            Value::Bool(_) => Some(Domain::Bool),
            Value::Date(_) => Some(Domain::Date),
        }
    }

    /// Whether this value may be stored in an attribute of domain `d`
    /// (null fits every domain).
    #[must_use]
    pub fn fits(&self, d: Domain) -> bool {
        self.domain().is_none_or(|vd| vd == d)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "d{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A tuple: a fixed-arity sequence of values, positionally aligned with a
/// relation header.
///
/// Paper §2: `t[W]` denotes the subtuple of `t` over the attributes `W`;
/// a tuple is **total** iff it has only non-null values; `null_k` is the
/// tuple of `k` nulls.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The all-null tuple `null_k` of the paper.
    #[must_use]
    pub fn nulls(k: usize) -> Self {
        Tuple(vec![Value::Null; k].into_boxed_slice())
    }

    /// Arity of the tuple.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values, in order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at position `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Whether the tuple is total (paper §2: only non-null values).
    #[must_use]
    pub fn is_total(&self) -> bool {
        self.0.iter().all(|v| !v.is_null())
    }

    /// Whether the subtuple at `positions` is total.
    #[must_use]
    pub fn is_total_at(&self, positions: &[usize]) -> bool {
        positions.iter().all(|&i| !self.0[i].is_null())
    }

    /// Whether the subtuple at `positions` consists entirely of nulls.
    #[must_use]
    pub fn is_all_null_at(&self, positions: &[usize]) -> bool {
        positions.iter().all(|&i| self.0[i].is_null())
    }

    /// The subtuple `t[W]` for the attribute positions `W`.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Whether the subtuples at `left` and `right` are equal
    /// (`t[Y] = t[Z]`), treating null as equal to null.
    #[must_use]
    pub fn eq_at(&self, left: &[usize], right: &[usize]) -> bool {
        left.len() == right.len()
            && left
                .iter()
                .zip(right)
                .all(|(&l, &r)| self.0[l] == self.0[r])
    }

    /// Concatenates two tuples (used by joins).
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// A copy with position `i` replaced by `v`.
    #[must_use]
    pub fn with(&self, i: usize, v: Value) -> Tuple {
        let mut vals = self.0.to_vec();
        vals[i] = v;
        Tuple(vals.into_boxed_slice())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl std::borrow::Borrow<[Value]> for Tuple {
    /// Tuples hash and compare exactly like their value slice (the derived
    /// impls delegate to the boxed slice), so a `&[Value]` can probe a
    /// `HashMap<Tuple, _>` without allocating a key tuple.
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple(values.into())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple(values.into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_identical_to_null() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(3).is_null());
    }

    #[test]
    fn null_fits_every_domain() {
        for d in [Domain::Int, Domain::Text, Domain::Bool, Domain::Date] {
            assert!(Value::Null.fits(d));
        }
        assert!(Value::Int(1).fits(Domain::Int));
        assert!(!Value::Int(1).fits(Domain::Text));
    }

    #[test]
    fn totality() {
        let t = Tuple::new([Value::Int(1), Value::text("x")]);
        assert!(t.is_total());
        let p = Tuple::new([Value::Int(1), Value::Null]);
        assert!(!p.is_total());
        assert!(p.is_total_at(&[0]));
        assert!(!p.is_total_at(&[0, 1]));
        assert!(p.is_all_null_at(&[1]));
        assert!(!p.is_all_null_at(&[0, 1]));
        assert!(Tuple::nulls(3).is_all_null_at(&[0, 1, 2]));
    }

    #[test]
    fn projection_and_concat() {
        let t = Tuple::new([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(
            t.project(&[2, 0]),
            Tuple::new([Value::Int(3), Value::Int(1)])
        );
        let u = Tuple::new([Value::text("a")]);
        assert_eq!(
            t.concat(&u),
            Tuple::new([
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::text("a")
            ])
        );
    }

    #[test]
    fn subtuple_equality_includes_nulls() {
        let t = Tuple::new([Value::Null, Value::Null, Value::Int(5), Value::Int(5)]);
        assert!(t.eq_at(&[0], &[1]));
        assert!(t.eq_at(&[2], &[3]));
        assert!(!t.eq_at(&[0], &[2]));
        assert!(!t.eq_at(&[0, 2], &[1]));
    }

    #[test]
    fn with_replaces_one_position() {
        let t = Tuple::new([Value::Int(1), Value::Int(2)]);
        assert_eq!(
            t.with(1, Value::Null),
            Tuple::new([Value::Int(1), Value::Null])
        );
    }

    #[test]
    fn borrowed_slice_probes_a_tuple_keyed_map() {
        use std::collections::HashMap;
        let mut m: HashMap<Tuple, i32> = HashMap::new();
        m.insert(Tuple::new([Value::Int(1), Value::Null]), 7);
        let key: Vec<Value> = vec![Value::Int(1), Value::Null];
        assert_eq!(m.get(key.as_slice()), Some(&7));
        assert_eq!(m.get([Value::Int(2)].as_slice()), None);
    }

    #[test]
    fn display_forms() {
        let t = Tuple::new([Value::Int(1), Value::Null, Value::text("x")]);
        assert_eq!(t.to_string(), "(1, null, 'x')");
    }
}
