//! DDL generation for the ICDE'92 relation-merging reproduction — a
//! reimplementation of the paper's SDT (Schema Definition and Translation)
//! tool \[12\].
//!
//! * [`dialect`] — the four target dialects (DB2, SYBASE 4.0, INGRES 6.3,
//!   SQL-92) and their constraint-maintenance mechanisms (§5.1);
//! * [`mod@generate`] — `CREATE TABLE` emission with declarative keys,
//!   `NOT NULL`, foreign keys, plus triggers (SYBASE), rules (INGRES) or
//!   `CHECK`s (SQL-92) for the general null constraints and non key-based
//!   inclusion dependencies `Merge` can introduce;
//! * [`sdt`] — the end-to-end pipeline: EER schema → relational schema
//!   (merged or one-to-one) → dialect-specific DDL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dialect;
pub mod generate;
pub mod migration;
pub mod sdt;

pub use dialect::{DdlScript, DdlStatement, Dialect};
pub use generate::{check_expr, generate};
pub use migration::{backward_migration, forward_migration};
pub use sdt::{advisor_config_for, run as run_sdt, SdtOption, SdtOutput};
