//! DDL generation: the code-emitting half of the SDT tool \[12\].

use relmerge_obs as obs;
use relmerge_relational::{NullConstraint, RelationScheme, RelationalSchema, Result};

use crate::dialect::{DdlScript, DdlStatement, Dialect};

/// Generates a DDL script deploying `schema` on `dialect`.
///
/// Constraint classes the dialect cannot maintain are emitted as
/// `-- UNSUPPORTED` warning comments rather than silently dropped.
pub fn generate(schema: &RelationalSchema, dialect: Dialect) -> Result<DdlScript> {
    let mut span = obs::span("ddl.generate").field("dialect", dialect.name());
    schema.validate()?;
    let mut script = DdlScript::default();
    for name in creation_order(schema) {
        let s = schema.scheme_required(&name)?;
        script.statements.push(create_table(schema, s, dialect));
        // Non-declarative key maintenance: unique indexes.
        if !matches!(dialect, Dialect::Db2 | Dialect::Sql92) {
            for (i, key) in s.candidate_keys().iter().enumerate() {
                script.statements.push(DdlStatement::Index {
                    table: s.name().to_owned(),
                    sql: format!(
                        "CREATE UNIQUE INDEX {}_key{} ON {} ({});",
                        ident(s.name()),
                        i,
                        ident(s.name()),
                        key.iter().map(|k| ident(k)).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
    }
    // Referential integrity / inclusion dependencies beyond what CREATE
    // TABLE declared.
    for (i, ind) in schema.inds().iter().enumerate() {
        let key_based = schema
            .scheme(&ind.rhs_rel)
            .is_some_and(|rhs| ind.is_key_based(rhs));
        if key_based && dialect.declarative_foreign_keys() {
            continue; // declared inline in CREATE TABLE
        }
        match dialect.procedural_mechanism() {
            Some("trigger") => script.statements.push(trigger_for_ind(ind, i)),
            Some("rule") => script.statements.push(rule_for_ind(ind, i)),
            _ => script.statements.push(DdlStatement::Unsupported {
                constraint: ind.to_string(),
                sql: format!(
                    "-- UNSUPPORTED on {}: inclusion dependency {} must be \
                     maintained by application code",
                    dialect.name(),
                    ind
                ),
            }),
            // `Some(other)` cannot occur: mechanisms are "trigger"/"rule".
        }
    }
    // Null constraints beyond NOT NULL.
    for (i, c) in schema.null_constraints().iter().enumerate() {
        if c.is_nna() {
            continue; // NOT NULL columns, declared inline
        }
        if dialect.supports_check() {
            script.statements.push(DdlStatement::CreateTable {
                table: c.rel().to_owned(),
                sql: format!(
                    "ALTER TABLE {} ADD CONSTRAINT nc{} CHECK ({});",
                    ident(c.rel()),
                    i,
                    check_expr(c)
                ),
            });
            continue;
        }
        match dialect.procedural_mechanism() {
            Some("trigger") => script.statements.push(trigger_for_null(c, i)),
            Some("rule") => script.statements.push(rule_for_null(c, i)),
            _ => script.statements.push(DdlStatement::Unsupported {
                constraint: c.to_string(),
                sql: format!(
                    "-- UNSUPPORTED on {}: null constraint {} (no trigger/rule \
                     mechanism; see paper Section 5.1)",
                    dialect.name(),
                    c
                ),
            }),
        }
    }
    record_statement_counts(&script, dialect, &mut span);
    Ok(script)
}

/// Bumps the per-dialect statement counters (`ddl.<dialect>.<kind>`) and
/// annotates the generation span with the emitted counts. Declarative
/// `CHECK` constraints ride on the `CreateTable` variant as `ALTER TABLE`
/// statements, so they are told apart by their SQL prefix.
fn record_statement_counts(script: &DdlScript, dialect: Dialect, span: &mut obs::Span) {
    let mut tables = 0u64;
    let mut checks = 0u64;
    let mut indexes = 0u64;
    let mut triggers = 0u64;
    let mut rules = 0u64;
    let mut unsupported = 0u64;
    for s in &script.statements {
        match s {
            DdlStatement::CreateTable { sql, .. } => {
                if sql.starts_with("ALTER TABLE") {
                    checks += 1;
                } else {
                    tables += 1;
                }
            }
            DdlStatement::Index { .. } => indexes += 1,
            DdlStatement::Trigger { .. } => triggers += 1,
            DdlStatement::Rule { .. } => rules += 1,
            DdlStatement::Unsupported { .. } => unsupported += 1,
        }
    }
    let registry = obs::global();
    let slug = dialect.slug();
    for (kind, n) in [
        ("tables", tables),
        ("checks", checks),
        ("indexes", indexes),
        ("triggers", triggers),
        ("rules", rules),
        ("unsupported", unsupported),
    ] {
        if n > 0 {
            registry.counter(&format!("ddl.{slug}.{kind}")).add(n);
        }
    }
    span.add_field("statements", script.statements.len());
    if triggers + rules > 0 {
        span.add_field("procedural", triggers + rules);
    }
    if unsupported > 0 {
        span.add_field("unsupported", unsupported);
    }
}

fn ident(name: &str) -> String {
    name.replace('.', "_")
}

/// Orders scheme names so that every table follows the tables it
/// references (declarative `FOREIGN KEY` clauses require the referenced
/// table to exist). Self-references are allowed; genuine cycles fall back
/// to declaration order for the remainder (deployment would need `ALTER
/// TABLE`, which the 1989-era targets lack — the warning surfaces when the
/// dialect is declarative).
fn creation_order(schema: &RelationalSchema) -> Vec<String> {
    let mut remaining: Vec<&str> = schema.schemes().iter().map(|s| s.name()).collect();
    let mut done: Vec<String> = Vec::new();
    while !remaining.is_empty() {
        let ready: Vec<&str> = remaining
            .iter()
            .copied()
            .filter(|name| {
                schema
                    .inds()
                    .iter()
                    .filter(|ind| ind.lhs_rel == *name && ind.rhs_rel != *name)
                    .all(|ind| done.iter().any(|d| d == &ind.rhs_rel))
            })
            .collect();
        if ready.is_empty() {
            // Cycle: emit the rest in declaration order.
            done.extend(remaining.iter().map(|s| (*s).to_owned()));
            break;
        }
        for r in &ready {
            done.push((*r).to_owned());
        }
        remaining.retain(|n| !ready.contains(n));
    }
    done
}

fn create_table(schema: &RelationalSchema, s: &RelationScheme, dialect: Dialect) -> DdlStatement {
    let mut lines: Vec<String> = Vec::new();
    for a in s.attrs() {
        let not_null = schema.attr_not_null(s.name(), a.name());
        lines.push(format!(
            "  {} {}{}",
            ident(a.name()),
            a.domain().sql_name(),
            if not_null { " NOT NULL" } else { "" }
        ));
    }
    if matches!(dialect, Dialect::Db2 | Dialect::Sql92) {
        let keys = s.candidate_keys();
        let pk = &keys[0];
        lines.push(format!(
            "  PRIMARY KEY ({})",
            pk.iter().map(|k| ident(k)).collect::<Vec<_>>().join(", ")
        ));
        for alt in keys.iter().skip(1) {
            lines.push(format!(
                "  UNIQUE ({})",
                alt.iter().map(|k| ident(k)).collect::<Vec<_>>().join(", ")
            ));
        }
        if dialect.declarative_foreign_keys() {
            for ind in schema.inds().iter().filter(|i| i.lhs_rel == s.name()) {
                let key_based = schema
                    .scheme(&ind.rhs_rel)
                    .is_some_and(|rhs| ind.is_key_based(rhs));
                if key_based {
                    lines.push(format!(
                        "  FOREIGN KEY ({}) REFERENCES {} ({})",
                        ind.lhs_attrs
                            .iter()
                            .map(|x| ident(x))
                            .collect::<Vec<_>>()
                            .join(", "),
                        ident(&ind.rhs_rel),
                        ind.rhs_attrs
                            .iter()
                            .map(|x| ident(x))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
        }
    }
    DdlStatement::CreateTable {
        table: s.name().to_owned(),
        sql: format!(
            "CREATE TABLE {} (\n{}\n);",
            ident(s.name()),
            lines.join(",\n")
        ),
    }
}

/// A SQL boolean expression equivalent to the single-tuple null constraint
/// (used for SQL-92 `CHECK`s and inside trigger/rule bodies).
#[must_use]
pub fn check_expr(c: &NullConstraint) -> String {
    let total = |attrs: &[String]| -> String {
        attrs
            .iter()
            .map(|a| format!("{} IS NOT NULL", ident(a)))
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    let all_null = |attrs: &[String]| -> String {
        attrs
            .iter()
            .map(|a| format!("{} IS NULL", ident(a)))
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    match c {
        NullConstraint::NullExistence { lhs, rhs, .. } => {
            if lhs.is_empty() {
                total(rhs)
            } else {
                format!("NOT ({}) OR ({})", total(lhs), total(rhs))
            }
        }
        NullConstraint::NullSync { attrs, .. } => {
            format!("({}) OR ({})", total(attrs), all_null(attrs))
        }
        NullConstraint::PartNull { groups, .. } => groups
            .iter()
            .map(|g| format!("({})", total(g)))
            .collect::<Vec<_>>()
            .join(" OR "),
        NullConstraint::TotalEquality { lhs, rhs, .. } => {
            let eqs = lhs
                .iter()
                .zip(rhs)
                .map(|(y, z)| {
                    format!(
                        "({} IS NULL OR {} IS NULL OR {} = {})",
                        ident(y),
                        ident(z),
                        ident(y),
                        ident(z)
                    )
                })
                .collect::<Vec<_>>();
            eqs.join(" AND ")
        }
    }
}

fn trigger_for_null(c: &NullConstraint, i: usize) -> DdlStatement {
    let table = ident(c.rel());
    DdlStatement::Trigger {
        table: c.rel().to_owned(),
        sql: format!(
            "CREATE TRIGGER {table}_nc{i}\nON {table}\nFOR INSERT, UPDATE\nAS\n\
             IF EXISTS (SELECT 1 FROM inserted WHERE NOT ({expr}))\nBEGIN\n\
             \x20 RAISERROR 20001 'null constraint violated: {c}'\n\
             \x20 ROLLBACK TRANSACTION\nEND",
            expr = check_expr(c),
        ),
    }
}

fn rule_for_null(c: &NullConstraint, i: usize) -> DdlStatement {
    let table = ident(c.rel());
    DdlStatement::Rule {
        table: c.rel().to_owned(),
        sql: format!(
            "CREATE PROCEDURE {table}_nc{i}_check AS\nBEGIN\n\
             \x20 RAISE ERROR 20001 'null constraint violated: {c}';\nEND;\n\
             CREATE RULE {table}_nc{i} AFTER INSERT, UPDATE OF {table}\n\
             WHERE NOT ({expr})\nEXECUTE PROCEDURE {table}_nc{i}_check;",
            expr = check_expr(c),
        ),
    }
}

fn trigger_for_ind(ind: &relmerge_relational::InclusionDep, i: usize) -> DdlStatement {
    let lhs = ident(&ind.lhs_rel);
    let rhs = ident(&ind.rhs_rel);
    let join_cond = ind
        .lhs_attrs
        .iter()
        .zip(&ind.rhs_attrs)
        .map(|(l, r)| format!("inserted.{} = {}.{}", ident(l), rhs, ident(r)))
        .collect::<Vec<_>>()
        .join(" AND ");
    let lhs_total = ind
        .lhs_attrs
        .iter()
        .map(|l| format!("inserted.{} IS NOT NULL", ident(l)))
        .collect::<Vec<_>>()
        .join(" AND ");
    DdlStatement::Trigger {
        table: ind.lhs_rel.clone(),
        sql: format!(
            "CREATE TRIGGER {lhs}_fk{i}\nON {lhs}\nFOR INSERT, UPDATE\nAS\n\
             IF EXISTS (SELECT 1 FROM inserted\n\
             \x20          WHERE {lhs_total}\n\
             \x20            AND NOT EXISTS (SELECT 1 FROM {rhs} WHERE {join_cond}))\nBEGIN\n\
             \x20 RAISERROR 20002 'inclusion dependency violated: {ind}'\n\
             \x20 ROLLBACK TRANSACTION\nEND",
        ),
    }
}

fn rule_for_ind(ind: &relmerge_relational::InclusionDep, i: usize) -> DdlStatement {
    let lhs = ident(&ind.lhs_rel);
    let rhs = ident(&ind.rhs_rel);
    let params = ind
        .lhs_attrs
        .iter()
        .map(|l| format!("{} = NEW.{}", ident(l), ident(l)))
        .collect::<Vec<_>>()
        .join(", ");
    DdlStatement::Rule {
        table: ind.lhs_rel.clone(),
        sql: format!(
            "CREATE PROCEDURE {lhs}_fk{i}_check ({decl}) AS\nBEGIN\n\
             \x20 IF NOT EXISTS (SELECT 1 FROM {rhs} WHERE {cond}) THEN\n\
             \x20   RAISE ERROR 20002 'inclusion dependency violated: {ind}';\n\
             \x20 ENDIF;\nEND;\n\
             CREATE RULE {lhs}_fk{i} AFTER INSERT, UPDATE OF {lhs}\n\
             EXECUTE PROCEDURE {lhs}_fk{i}_check ({params});",
            decl = ind
                .lhs_attrs
                .iter()
                .map(|l| format!("{} INTEGER", ident(l)))
                .collect::<Vec<_>>()
                .join(", "),
            cond = ind
                .lhs_attrs
                .iter()
                .zip(&ind.rhs_attrs)
                .map(|(l, r)| format!("{}.{} = :{}", rhs, ident(r), ident(l)))
                .collect::<Vec<_>>()
                .join(" AND "),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_relational::{Attribute, Domain, InclusionDep, RelationScheme};

    fn schema() -> RelationalSchema {
        let a = |n: &str, d: Domain| Attribute::new(n, d);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::new("COURSE", vec![a("C.NR", Domain::Int)], &["C.NR"]).unwrap(),
        )
        .unwrap();
        rs.add_scheme(
            RelationScheme::new(
                "OFFER",
                vec![a("O.C.NR", Domain::Int), a("O.D.NAME", Domain::Text)],
                &["O.C.NR"],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna("COURSE", &["C.NR"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.C.NR"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::ns("OFFER", &["O.C.NR", "O.D.NAME"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]))
            .unwrap();
        rs
    }

    #[test]
    fn db2_declarative_plus_warnings() {
        let script = generate(&schema(), Dialect::Db2).unwrap();
        let text = script.render();
        assert!(text.contains("CREATE TABLE COURSE"));
        assert!(text.contains("C_NR INTEGER NOT NULL"));
        assert!(text.contains("PRIMARY KEY (C_NR)"));
        assert!(text.contains("FOREIGN KEY (O_C_NR) REFERENCES COURSE (C_NR)"));
        // The NS constraint is unmaintainable on DB2.
        assert_eq!(script.unsupported().len(), 1);
        assert!(text.contains("-- UNSUPPORTED on DB2"));
        assert_eq!(script.procedural_count(), 0);
    }

    #[test]
    fn sybase_triggers() {
        let script = generate(&schema(), Dialect::Sybase40).unwrap();
        let text = script.render();
        // FK and NS both become triggers; keys become unique indexes.
        assert!(text.contains("CREATE TRIGGER OFFER_fk0"));
        assert!(text.contains("CREATE TRIGGER OFFER_nc"));
        assert!(text.contains("CREATE UNIQUE INDEX"));
        assert!(text.contains("ROLLBACK TRANSACTION"));
        assert!(script.unsupported().is_empty());
        assert_eq!(script.procedural_count(), 2);
    }

    #[test]
    fn ingres_rules() {
        let script = generate(&schema(), Dialect::Ingres63).unwrap();
        let text = script.render();
        assert!(text.contains("CREATE RULE OFFER_fk0"));
        assert!(text.contains("CREATE RULE OFFER_nc"));
        assert!(text.contains("EXECUTE PROCEDURE"));
        assert!(script.unsupported().is_empty());
    }

    #[test]
    fn sql92_checks() {
        let script = generate(&schema(), Dialect::Sql92).unwrap();
        let text = script.render();
        assert!(text.contains("ADD CONSTRAINT nc2 CHECK"));
        assert!(text.contains("O_C_NR IS NOT NULL AND O_D_NAME IS NOT NULL"));
        assert!(text.contains("O_C_NR IS NULL AND O_D_NAME IS NULL"));
        assert!(script.unsupported().is_empty());
        assert_eq!(script.procedural_count(), 0);
    }

    #[test]
    fn check_expressions_cover_all_constraint_forms() {
        assert_eq!(
            check_expr(&NullConstraint::nna("R", &["A"])),
            "A IS NOT NULL"
        );
        assert_eq!(
            check_expr(&NullConstraint::ne("R", &["A"], &["B"])),
            "NOT (A IS NOT NULL) OR (B IS NOT NULL)"
        );
        assert_eq!(
            check_expr(&NullConstraint::ns("R", &["A", "B"])),
            "(A IS NOT NULL AND B IS NOT NULL) OR (A IS NULL AND B IS NULL)"
        );
        assert_eq!(
            check_expr(&NullConstraint::pn("R", &[&["A"], &["B"]])),
            "(A IS NOT NULL) OR (B IS NOT NULL)"
        );
        assert_eq!(
            check_expr(&NullConstraint::te("R", &["A"], &["B"])),
            "(A IS NULL OR B IS NULL OR A = B)"
        );
    }

    #[test]
    fn tables_created_in_dependency_order() {
        let script = generate(&schema(), Dialect::Db2).unwrap();
        let text = script.render();
        let course = text.find("CREATE TABLE COURSE").unwrap();
        let offer = text.find("CREATE TABLE OFFER").unwrap();
        assert!(
            course < offer,
            "referenced table must be created before its referencer"
        );
    }

    #[test]
    fn cyclic_references_fall_back_gracefully() {
        let a = |n: &str| Attribute::new(n, Domain::Int);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("X", vec![a("X.K"), a("X.R")], &["X.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("Y", vec![a("Y.K"), a("Y.R")], &["Y.K"]).unwrap())
            .unwrap();
        rs.add_ind(InclusionDep::new("X", &["X.R"], "Y", &["Y.K"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("Y", &["Y.R"], "X", &["X.K"]))
            .unwrap();
        let script = generate(&rs, Dialect::Sql92).unwrap();
        // Both tables are still emitted.
        let text = script.render();
        assert!(text.contains("CREATE TABLE X"));
        assert!(text.contains("CREATE TABLE Y"));
    }

    #[test]
    fn self_reference_does_not_block_ordering() {
        let a = |n: &str| Attribute::new(n, Domain::Int);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("E", vec![a("E.K"), a("E.BOSS")], &["E.K"]).unwrap())
            .unwrap();
        rs.add_ind(InclusionDep::new("E", &["E.BOSS"], "E", &["E.K"]))
            .unwrap();
        let script = generate(&rs, Dialect::Db2).unwrap();
        assert!(script.render().contains("CREATE TABLE E"));
    }

    #[test]
    fn alternative_keys_emit_unique() {
        let a = |n: &str| Attribute::new(n, Domain::Int);
        let mut rs = RelationalSchema::new();
        rs.add_scheme(
            RelationScheme::with_candidate_keys(
                "R",
                vec![a("R.K"), a("R.ALT")],
                &[&["R.K"], &["R.ALT"]],
            )
            .unwrap(),
        )
        .unwrap();
        let script = generate(&rs, Dialect::Sql92).unwrap();
        assert!(script.render().contains("UNIQUE (R_ALT)"));
        let sybase = generate(&rs, Dialect::Sybase40).unwrap();
        assert!(sybase.render().contains("R_key1"));
    }
}
