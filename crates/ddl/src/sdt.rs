//! The SDT pipeline: the paper's Schema Definition and Translation tool
//! \[12\] end to end.
//!
//! *"Given an EER schema, SDT generates the corresponding schema definition
//! for various relational DBMSs, such as DB2, SYBASE 4.0, and INGRES 6.3.
//! SDT provides the options of (i) establishing a one-to-one correspondence
//! between the relation-schemes in the relational schema and the
//! object-sets in the EER schema (i.e. not using merging), or (ii) using
//! merging for reducing the number of relation-schemes in the relational
//! schema."* (paper §6)

use relmerge_core::{Advisor, AdvisorConfig};
use relmerge_eer::model::EerSchema;
use relmerge_eer::translate;
use relmerge_relational::{RelationalSchema, Result};

use crate::dialect::{DdlScript, Dialect};
use crate::generate;

/// SDT's two translation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdtOption {
    /// Option (i): one relation-scheme per EER object-set.
    OneToOne,
    /// Option (ii): merge relation-schemes to reduce their number,
    /// constrained to merges the target dialect can maintain.
    Merged,
}

/// The outcome of one SDT run.
#[derive(Debug)]
pub struct SdtOutput {
    /// The relational schema deployed.
    pub schema: RelationalSchema,
    /// The generated DDL.
    pub script: DdlScript,
    /// The number of relation-schemes before and after merging
    /// (equal under [`SdtOption::OneToOne`]).
    pub scheme_count: (usize, usize),
    /// How many merges were applied.
    pub merges_applied: usize,
}

/// The advisor configuration matching a dialect's maintenance abilities:
/// dialects without a procedural mechanism only admit merges whose output
/// is fully declarative (Propositions 5.1 / 5.2 as gates).
#[must_use]
pub fn advisor_config_for(dialect: Dialect) -> AdvisorConfig {
    if dialect.procedural_mechanism().is_some() {
        // Triggers/rules can maintain general constraints and non-key
        // dependencies, but nullable candidate keys remain unmaintainable
        // (all nulls identical on SYBASE and INGRES).
        AdvisorConfig {
            require_key_based_inds: false,
            require_non_null_keys: true,
            require_nna_only: false,
            max_set_size: 0,
        }
    } else if dialect.supports_check() {
        // SQL-92: CHECKs cover general null constraints, but non key-based
        // inclusion dependencies have no declarative home.
        AdvisorConfig {
            require_key_based_inds: true,
            require_non_null_keys: false,
            require_nna_only: false,
            max_set_size: 0,
        }
    } else {
        AdvisorConfig::declarative_only()
    }
}

/// Runs SDT: translate the EER schema, optionally merge, and emit DDL for
/// `dialect`.
pub fn run(eer: &EerSchema, option: SdtOption, dialect: Dialect) -> Result<SdtOutput> {
    let base = translate::translate(eer)?;
    let before = base.schemes().len();
    let (schema, merges_applied) = match option {
        SdtOption::OneToOne => (base, 0),
        SdtOption::Merged => {
            let config = advisor_config_for(dialect);
            let (merged, applied) = Advisor::new(config).greedy(&base)?;
            (merged, applied.len())
        }
    };
    let script = generate::generate(&schema, dialect)?;
    let after = schema.schemes().len();
    Ok(SdtOutput {
        schema,
        script,
        scheme_count: (before, after),
        merges_applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_eer::figures;

    #[test]
    fn one_to_one_preserves_object_sets() {
        let eer = figures::fig7_eer();
        let out = run(&eer, SdtOption::OneToOne, Dialect::Db2).unwrap();
        assert_eq!(out.scheme_count, (8, 8));
        assert_eq!(out.merges_applied, 0);
        // Fig 3 is fully declarative: no warnings even on DB2.
        assert!(out.script.unsupported().is_empty());
    }

    #[test]
    fn merged_option_reduces_scheme_count() {
        let eer = figures::fig8_iv();
        let out = run(&eer, SdtOption::Merged, Dialect::Db2).unwrap();
        // COURSE + OFFER + TEACH merge into one scheme (NNA-only per
        // Proposition 5.2), DEPARTMENT and FACULTY stay.
        assert_eq!(out.scheme_count.0, 5);
        assert_eq!(out.scheme_count.1, 3);
        assert_eq!(out.merges_applied, 1);
        assert!(out.script.unsupported().is_empty());
        assert!(out.schema.nna_only());
    }

    #[test]
    fn dialect_gates_merging() {
        // Figure 7's university schema: the COURSE chain merge needs
        // general null constraints, so DB2 refuses it while SYBASE accepts
        // the sub-merges its triggers can maintain.
        let eer = figures::fig7_eer();
        let db2 = run(&eer, SdtOption::Merged, Dialect::Db2).unwrap();
        let sybase = run(&eer, SdtOption::Merged, Dialect::Sybase40).unwrap();
        assert!(db2.scheme_count.1 >= sybase.scheme_count.1);
        assert!(sybase.scheme_count.1 < sybase.scheme_count.0);
        // Everything SYBASE deploys is maintainable (possibly via
        // triggers).
        assert!(sybase.script.unsupported().is_empty());
        assert!(db2.script.unsupported().is_empty());
    }

    #[test]
    fn advisor_configs_match_dialects() {
        assert!(advisor_config_for(Dialect::Db2).require_nna_only);
        assert!(!advisor_config_for(Dialect::Sybase40).require_nna_only);
        assert!(advisor_config_for(Dialect::Sybase40).require_non_null_keys);
        let sql92 = advisor_config_for(Dialect::Sql92);
        assert!(sql92.require_key_based_inds);
        assert!(!sql92.require_nna_only);
    }
}
