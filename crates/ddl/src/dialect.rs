//! Target DDL dialects (the SDT tool's backends \[12\]).

use std::fmt;

/// A DDL dialect the generator can target.
///
/// Each dialect maps the schema's constraint classes onto the mechanisms
/// the corresponding system offers (paper §5.1):
///
/// | constraint class        | DB2          | SYBASE 4.0 | INGRES 6.3 | SQL-92      |
/// |-------------------------|--------------|------------|------------|-------------|
/// | `NOT NULL`              | declarative  | declarative| declarative| declarative |
/// | primary / candidate key | declarative  | index      | index      | declarative |
/// | referential integrity   | declarative  | trigger    | rule       | declarative |
/// | non key-based IND       | unsupported  | trigger    | rule       | comment     |
/// | general null constraint | unsupported  | trigger    | rule       | `CHECK`     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// IBM DB2 (reference \[5\]): declarative referential integrity, no
    /// general constraint mechanism.
    Db2,
    /// SYBASE 4.0 (reference \[13\]): Transact-SQL triggers.
    Sybase40,
    /// INGRES 6.3 (reference \[6\]): rules firing database procedures.
    Ingres63,
    /// Portable SQL-92: single-tuple null constraints become `CHECK`
    /// clauses.
    Sql92,
}

impl Dialect {
    /// All dialects, for sweeps.
    pub const ALL: [Dialect; 4] = [
        Dialect::Db2,
        Dialect::Sybase40,
        Dialect::Ingres63,
        Dialect::Sql92,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Db2 => "DB2",
            Dialect::Sybase40 => "SYBASE 4.0",
            Dialect::Ingres63 => "INGRES 6.3",
            Dialect::Sql92 => "SQL-92",
        }
    }

    /// A short lowercase identifier for metric names (`ddl.<slug>.…`).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Dialect::Db2 => "db2",
            Dialect::Sybase40 => "sybase40",
            Dialect::Ingres63 => "ingres63",
            Dialect::Sql92 => "sql92",
        }
    }

    /// Whether referential integrity is declared in `CREATE TABLE`.
    #[must_use]
    pub fn declarative_foreign_keys(self) -> bool {
        matches!(self, Dialect::Db2 | Dialect::Sql92)
    }

    /// Whether single-tuple null constraints can be expressed as `CHECK`s.
    #[must_use]
    pub fn supports_check(self) -> bool {
        matches!(self, Dialect::Sql92)
    }

    /// Whether the dialect has a procedural mechanism (trigger/rule).
    #[must_use]
    pub fn procedural_mechanism(self) -> Option<&'static str> {
        match self {
            Dialect::Sybase40 => Some("trigger"),
            Dialect::Ingres63 => Some("rule"),
            Dialect::Db2 | Dialect::Sql92 => None,
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated DDL artifact, categorized for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdlStatement {
    /// A `CREATE TABLE`.
    CreateTable {
        /// The table name.
        table: String,
        /// The statement text.
        sql: String,
    },
    /// A `CREATE TRIGGER` (SYBASE) maintaining a constraint.
    Trigger {
        /// The table the trigger is on.
        table: String,
        /// The statement text.
        sql: String,
    },
    /// A `CREATE RULE` + procedure (INGRES) maintaining a constraint.
    Rule {
        /// The table the rule is on.
        table: String,
        /// The statement text.
        sql: String,
    },
    /// A unique index (SYBASE/INGRES key maintenance).
    Index {
        /// The table indexed.
        table: String,
        /// The statement text.
        sql: String,
    },
    /// A constraint the dialect cannot maintain — emitted as a warning
    /// comment so the schema deployer sees the gap (paper §5.1: for such
    /// systems "our merging technique can be applied only when such
    /// constraints and dependencies are not generated").
    Unsupported {
        /// The constraint description.
        constraint: String,
        /// The comment text.
        sql: String,
    },
}

impl DdlStatement {
    /// The SQL (or comment) text.
    #[must_use]
    pub fn sql(&self) -> &str {
        match self {
            DdlStatement::CreateTable { sql, .. }
            | DdlStatement::Trigger { sql, .. }
            | DdlStatement::Rule { sql, .. }
            | DdlStatement::Index { sql, .. }
            | DdlStatement::Unsupported { sql, .. } => sql,
        }
    }
}

/// A full generated script.
#[derive(Debug, Clone, Default)]
pub struct DdlScript {
    /// The statements, in emission order.
    pub statements: Vec<DdlStatement>,
}

impl DdlScript {
    /// Renders the script as one SQL text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.statements {
            out.push_str(s.sql());
            out.push_str("\n\n");
        }
        out
    }

    /// The statements that are warnings about unmaintainable constraints.
    #[must_use]
    pub fn unsupported(&self) -> Vec<&DdlStatement> {
        self.statements
            .iter()
            .filter(|s| matches!(s, DdlStatement::Unsupported { .. }))
            .collect()
    }

    /// Count of procedural artifacts (triggers + rules).
    #[must_use]
    pub fn procedural_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| matches!(s, DdlStatement::Trigger { .. } | DdlStatement::Rule { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_capabilities() {
        assert!(Dialect::Db2.declarative_foreign_keys());
        assert!(!Dialect::Sybase40.declarative_foreign_keys());
        assert_eq!(Dialect::Sybase40.procedural_mechanism(), Some("trigger"));
        assert_eq!(Dialect::Ingres63.procedural_mechanism(), Some("rule"));
        assert_eq!(Dialect::Db2.procedural_mechanism(), None);
        assert!(Dialect::Sql92.supports_check());
        assert!(!Dialect::Db2.supports_check());
    }

    #[test]
    fn script_helpers() {
        let script = DdlScript {
            statements: vec![
                DdlStatement::CreateTable {
                    table: "T".into(),
                    sql: "CREATE TABLE T (X INTEGER);".into(),
                },
                DdlStatement::Trigger {
                    table: "T".into(),
                    sql: "CREATE TRIGGER ...".into(),
                },
                DdlStatement::Unsupported {
                    constraint: "c".into(),
                    sql: "-- warning".into(),
                },
            ],
        };
        assert_eq!(script.procedural_count(), 1);
        assert_eq!(script.unsupported().len(), 1);
        assert!(script.render().contains("CREATE TABLE T"));
    }
}
