//! Data-migration SQL: the state mappings η and η′ of Definition 4.1,
//! rendered as executable SQL so a deployed database can adopt (or back
//! out of) a merge.
//!
//! * [`forward_migration`] — populate the merged relation from the member
//!   relations: the key-relation `FULL OUTER JOIN` chain of η (composed
//!   with μ's projection when attributes were removed);
//! * [`backward_migration`] — repopulate the member relations from the
//!   merged relation: the total projections of η′, with removed key
//!   attributes recovered from `Km` (μ′).

use relmerge_core::{KeyRelationSpec, Merged};
use relmerge_relational::Result;

fn ident(name: &str) -> String {
    name.replace('.', "_")
}

/// The `INSERT INTO <merged> SELECT … FROM … FULL OUTER JOIN …` statement
/// implementing η (∘ μ).
pub fn forward_migration(merged: &Merged) -> Result<String> {
    let rm = merged.merged_name();
    let target_cols: Vec<String> = merged
        .merged_scheme()
        .attr_names()
        .iter()
        .map(|a| ident(a))
        .collect();
    let km = merged.km();

    // FROM clause: the key-relation (or the union deriving a synthetic
    // one), then one FULL OUTER JOIN per non-key-relation group.
    let mut select_cols: Vec<String> = Vec::new();
    let mut from = String::new();
    match merged.key_relation() {
        KeyRelationSpec::Member(name) => {
            from.push_str(&ident(name));
        }
        KeyRelationSpec::Synthetic { attrs } => {
            // Derive the key-relation as the union of member keys
            // (Definition 4.1's rk).
            let mut arms: Vec<String> = Vec::new();
            for g in merged.groups() {
                let key_cols: Vec<String> = g.key.iter().map(|k| ident(k)).collect();
                arms.push(format!(
                    "SELECT DISTINCT {} FROM {}",
                    key_cols.join(", "),
                    ident(&g.scheme)
                ));
            }
            let alias_cols: Vec<String> = attrs.iter().map(|a| ident(a.name())).collect();
            from.push_str(&format!(
                "(\n  {}\n) AS KEYREL ({})",
                arms.join("\n  UNION\n  "),
                alias_cols.join(", ")
            ));
        }
    }
    let km_qualified: Vec<String> = km.iter().map(|k| ident(k)).collect();
    for g in merged.groups() {
        if g.is_key_relation {
            continue;
        }
        let on: Vec<String> = km_qualified
            .iter()
            .zip(&g.key)
            .map(|(k, gk)| format!("{k} = {}", ident(gk)))
            .collect();
        from.push_str(&format!(
            "\n  FULL OUTER JOIN {} ON {}",
            ident(&g.scheme),
            on.join(" AND ")
        ));
    }
    // SELECT list: the merged scheme's surviving attributes, in order.
    for a in merged.merged_scheme().attr_names() {
        select_cols.push(ident(a));
    }
    Ok(format!(
        "INSERT INTO {} ({})\nSELECT {}\nFROM {};",
        ident(rm),
        target_cols.join(", "),
        select_cols.join(", "),
        from
    ))
}

/// The `INSERT INTO <member> SELECT …` statements implementing η′ (∘ μ′):
/// one per member relation, selecting the rows whose group part is total
/// and recovering removed key attributes from `Km`.
pub fn backward_migration(merged: &Merged) -> Result<Vec<String>> {
    let rm = ident(merged.merged_name());
    let km = merged.km();
    let mut out = Vec::new();
    for g in merged.groups() {
        let original = merged.original_schema().scheme_required(&g.scheme)?;
        let cols: Vec<String> = original.attr_names().iter().map(|a| ident(a)).collect();
        // Source expression per attribute: itself, or the corresponding
        // Km attribute if removed.
        let select: Vec<String> = g
            .original_attrs
            .iter()
            .map(|a| {
                if g.removed.contains(a) {
                    let p = g
                        .key
                        .iter()
                        .position(|k| k == a)
                        .expect("only key attributes are removed");
                    format!("{} AS {}", ident(km[p]), ident(a))
                } else {
                    ident(a)
                }
            })
            .collect();
        // Membership witness: the surviving attributes are all non-null
        // (the NS(Xi) all-or-nothing guarantee).
        let witness: Vec<String> = g
            .surviving_attrs()
            .iter()
            .map(|a| format!("{} IS NOT NULL", ident(a)))
            .collect();
        out.push(format!(
            "INSERT INTO {} ({})\nSELECT {}\nFROM {rm}\nWHERE {};",
            ident(&g.scheme),
            cols.join(", "),
            select.join(", "),
            witness.join(" AND ")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmerge_core::Merge;
    use relmerge_relational::{
        Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema,
    };

    fn a(n: &str) -> Attribute {
        Attribute::new(n, Domain::Int)
    }

    fn star() -> RelationalSchema {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("ROOT", vec![a("ROOT.K")], &["ROOT.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("S0", vec![a("S0.K"), a("S0.V")], &["S0.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("ROOT", &["ROOT.K"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("S0", &["S0.K", "S0.V"]))
            .unwrap();
        rs.add_ind(InclusionDep::new("S0", &["S0.K"], "ROOT", &["ROOT.K"]))
            .unwrap();
        rs
    }

    #[test]
    fn forward_migration_member_key_relation() {
        let rs = star();
        let m = Merge::plan(&rs, &["ROOT", "S0"], "M").unwrap();
        let sql = forward_migration(&m).unwrap();
        assert!(sql.contains("INSERT INTO M (ROOT_K, S0_K, S0_V)"), "{sql}");
        assert!(sql.contains("FROM ROOT\n  FULL OUTER JOIN S0 ON ROOT_K = S0_K"));
    }

    #[test]
    fn forward_migration_after_remove_projects() {
        let rs = star();
        let mut m = Merge::plan(&rs, &["ROOT", "S0"], "M").unwrap();
        m.remove_all_removable().unwrap();
        let sql = forward_migration(&m).unwrap();
        // S0.K is gone from the target list.
        assert!(sql.contains("INSERT INTO M (ROOT_K, S0_V)"), "{sql}");
        assert!(!sql.contains("INSERT INTO M (ROOT_K, S0_K"));
    }

    #[test]
    fn forward_migration_synthetic_key_unions() {
        let mut rs = RelationalSchema::new();
        rs.add_scheme(RelationScheme::new("A", vec![a("A.K"), a("A.V")], &["A.K"]).unwrap())
            .unwrap();
        rs.add_scheme(RelationScheme::new("B", vec![a("B.K"), a("B.V")], &["B.K"]).unwrap())
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("A", &["A.K", "A.V"]))
            .unwrap();
        rs.add_null_constraint(NullConstraint::nna("B", &["B.K", "B.V"]))
            .unwrap();
        let m = Merge::plan_with_synthetic_key(&rs, &["A", "B"], "M", &["CN"]).unwrap();
        let sql = forward_migration(&m).unwrap();
        assert!(sql.contains("SELECT DISTINCT A_K FROM A"), "{sql}");
        assert!(sql.contains("UNION"));
        assert!(sql.contains("AS KEYREL (CN)"));
        assert!(sql.contains("FULL OUTER JOIN A ON CN = A_K"));
        assert!(sql.contains("FULL OUTER JOIN B ON CN = B_K"));
    }

    #[test]
    fn backward_migration_recovers_removed_keys() {
        let rs = star();
        let mut m = Merge::plan(&rs, &["ROOT", "S0"], "M").unwrap();
        m.remove_all_removable().unwrap();
        let stmts = backward_migration(&m).unwrap();
        assert_eq!(stmts.len(), 2);
        let root = stmts.iter().find(|s| s.contains("INTO ROOT")).unwrap();
        assert!(root.contains("WHERE ROOT_K IS NOT NULL"));
        let s0 = stmts.iter().find(|s| s.contains("INTO S0")).unwrap();
        // The removed S0.K is recovered from ROOT.K.
        assert!(s0.contains("ROOT_K AS S0_K"), "{s0}");
        assert!(s0.contains("WHERE S0_V IS NOT NULL"));
    }
}
