//! The Teorey–Yang–Fry \[14\] translation baseline (paper §1, Figure 1(iii)).
//!
//! ER/EER-oriented design methodologies such as \[14\] *"recommend using a
//! single relation-scheme for representing a binary many-to-one
//! relationship-set and the entity-set involved in that relationship-set
//! with a many cardinality"* — but, as the paper shows, the resulting
//! schema is **inconsistent with the semantics** of the EER schema: it
//! admits states no EER instance corresponds to (an employee with a non-null
//! assignment `DATE` but a null project `NR`).
//!
//! This module implements that baseline translation faithfully — *without*
//! the repairing null constraints — plus [`repair`], which adds the
//! null-existence constraints the paper says are needed (`DATE ⊑ NR`).

use std::collections::{BTreeMap, HashSet};

use relmerge_relational::{
    Attribute, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Result,
};

use crate::model::{Card, EerSchema, RelationshipSet};
use crate::translate;

/// Which relationship sets a Teorey translation folds, and into which
/// relation. Returned alongside the schema for inspection and repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedRelationship {
    /// The relationship set that was folded.
    pub relationship: String,
    /// The many-side entity set it absorbed.
    pub entity: String,
    /// The relation-scheme holding both (named after the relationship,
    /// as in Figure 1(iii)'s `WORKS`).
    pub scheme: String,
    /// The nullable copied key of the one-side participant (`NR`).
    pub one_side_attrs: Vec<String>,
    /// The nullable relationship attributes (`DATE`).
    pub rel_attrs: Vec<String>,
}

/// The outcome of the baseline translation.
#[derive(Debug)]
pub struct TeoreyTranslation {
    /// The (semantically deficient) relational schema.
    pub schema: RelationalSchema,
    /// The foldings performed.
    pub folded: Vec<FoldedRelationship>,
}

/// Whether `r` is a binary many-to-one relationship set whose many side is
/// a strong, non-specialized entity set — the shape \[14\] folds.
fn foldable<'a>(eer: &EerSchema, r: &'a RelationshipSet) -> Option<(&'a str, &'a str)> {
    if r.participants.len() != 2 {
        return None;
    }
    let (a, b) = (&r.participants[0], &r.participants[1]);
    let (many, one) = match (a.card, b.card) {
        (Card::Many, Card::One) => (a, b),
        (Card::One, Card::Many) => (b, a),
        _ => return None,
    };
    let e = eer.entity(&many.object)?;
    if e.weak_owner.is_some() || !eer.parents_of(&e.name).is_empty() {
        return None;
    }
    Some((many.object.as_str(), one.object.as_str()))
}

/// Translates an EER schema following the Teorey methodology: each
/// foldable binary many-to-one relationship set absorbs its many-side
/// entity set into a single relation (the entity folds into at most one
/// relationship — the first declared, as in Figure 1(iii) where `EMPLOYEE`
/// folds into `WORKS` but not `MANAGES`). Everything else translates as in
/// the modular approach.
pub fn translate_teorey(eer: &EerSchema) -> Result<TeoreyTranslation> {
    eer.validate()?;
    // Decide the foldings: entity -> relationship (first foldable wins).
    let mut fold_of_entity: BTreeMap<&str, &RelationshipSet> = BTreeMap::new();
    for r in &eer.relationships {
        if let Some((many, _)) = foldable(eer, r) {
            fold_of_entity.entry(many).or_insert(r);
        }
    }

    // Start from the modular translation, then rewrite the folded pairs.
    let modular = translate::translate(eer)?;
    let folded_rel_names: HashSet<&str> =
        fold_of_entity.values().map(|r| r.name.as_str()).collect();
    let folded_entity_names: HashSet<&str> = fold_of_entity.keys().copied().collect();

    let mut schema = RelationalSchema::new();
    let mut folded = Vec::new();
    for s in modular.schemes() {
        if folded_entity_names.contains(s.name()) {
            continue; // absorbed into the relationship relation
        }
        if let Some((entity, rel)) = fold_of_entity
            .iter()
            .find(|(_, r)| r.name == s.name())
            .map(|(e, r)| (*e, *r))
        {
            // Folded relation: entity attrs (entity key is the relation
            // key, non-null) + relationship's one-side copy and own attrs
            // (all nullable).
            let e_scheme = modular.scheme_required(entity)?;
            let r_scheme = modular.scheme_required(&rel.name)?;
            let e_key: Vec<&str> = e_scheme.primary_key();
            // The relationship scheme's key is the copied many-side key;
            // its remaining attributes are the one-side copy + own attrs.
            let r_key: HashSet<&str> = r_scheme.primary_key().into_iter().collect();
            let extra: Vec<&Attribute> = r_scheme
                .attrs()
                .iter()
                .filter(|a| !r_key.contains(a.name()))
                .collect();
            let mut attrs: Vec<Attribute> = e_scheme.attrs().to_vec();
            attrs.extend(extra.iter().map(|a| (*a).clone()));
            schema.add_scheme(RelationScheme::new(rel.name.clone(), attrs, &e_key)?)?;
            // Only the entity part is non-null (the Figure 1(iii) `*`s).
            let e_nna: Vec<&str> = e_scheme
                .attrs()
                .iter()
                .map(Attribute::name)
                .filter(|a| modular.attr_not_null(entity, a))
                .collect();
            if !e_nna.is_empty() {
                schema.add_null_constraint(NullConstraint::nna(&rel.name, &e_nna))?;
            }
            // The one-side attributes of the relationship scheme keep their
            // referential dependency (checked on total projections).
            let own_attr_names: HashSet<String> = rel
                .attrs
                .iter()
                .map(|a| format!("{}.{}", rel.abbrev, a.name))
                .collect();
            folded.push(FoldedRelationship {
                relationship: rel.name.clone(),
                entity: entity.to_owned(),
                scheme: rel.name.clone(),
                one_side_attrs: extra
                    .iter()
                    .map(|a| a.name().to_owned())
                    .filter(|a| !own_attr_names.contains(a))
                    .collect(),
                rel_attrs: extra
                    .iter()
                    .map(|a| a.name().to_owned())
                    .filter(|a| own_attr_names.contains(a))
                    .collect(),
            });
        } else if folded_rel_names.contains(s.name()) {
            // Handled when its entity partner comes around (above).
            continue;
        } else {
            schema.add_scheme(s.clone())?;
        }
    }
    // Dependencies and constraints: keep everything whose schemes survive,
    // rewriting references to folded entities/relationships.
    let rewrite = |name: &str| -> String {
        if let Some(r) = fold_of_entity.get(name) {
            r.name.clone()
        } else {
            name.to_owned()
        }
    };
    for ind in modular.inds() {
        let lhs_rel = rewrite(&ind.lhs_rel);
        let rhs_rel = rewrite(&ind.rhs_rel);
        if lhs_rel == rhs_rel {
            continue; // the folded many-side reference became internal
        }
        let lhs: Vec<&str> = ind.lhs_attrs.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = ind.rhs_attrs.iter().map(String::as_str).collect();
        schema.add_ind(InclusionDep::new(lhs_rel, &lhs, rhs_rel, &rhs))?;
    }
    for c in modular.null_constraints() {
        if schema.scheme(c.rel()).is_some() && !folded_rel_names.contains(c.rel()) {
            schema.add_null_constraint(c.clone())?;
        }
    }
    schema.validate()?;
    Ok(TeoreyTranslation { schema, folded })
}

/// The repair the paper prescribes (§1): for every folded relationship,
/// constrain each relationship attribute to be null whenever the one-side
/// reference is null — the null-existence constraints `DATE ⊑ NR`, plus a
/// null-synchronization set across the one-side copy when it is composite.
pub fn repair(translation: &TeoreyTranslation) -> Result<RelationalSchema> {
    let mut schema = translation.schema.clone();
    for f in &translation.folded {
        let one: Vec<&str> = f.one_side_attrs.iter().map(String::as_str).collect();
        if one.is_empty() {
            continue;
        }
        for a in &f.rel_attrs {
            schema.add_null_constraint(NullConstraint::ne(&f.scheme, &[a.as_str()], &one))?;
        }
        if one.len() > 1 {
            schema.add_null_constraint(NullConstraint::ns(&f.scheme, &one))?;
        }
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use relmerge_relational::{DatabaseState, Tuple, Value};

    #[test]
    fn figure_1_iii_shape() {
        let eer = figures::fig1_eer();
        let t = translate_teorey(&eer).unwrap();
        // RS′: PROJECT, WORKS (folding EMPLOYEE), MANAGES.
        let names: Vec<&str> = t.schema.schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"PROJECT"));
        assert!(names.contains(&"WORKS"));
        assert!(names.contains(&"MANAGES"));
        let works = t.schema.scheme("WORKS").unwrap();
        assert_eq!(works.primary_key(), ["E.SSN"]);
        assert_eq!(works.attr_names(), ["E.SSN", "W.NR", "W.DATE"]);
        // NR and DATE are nullable; SSN is not.
        assert!(t.schema.attr_not_null("WORKS", "E.SSN"));
        assert!(!t.schema.attr_not_null("WORKS", "W.NR"));
        assert!(!t.schema.attr_not_null("WORKS", "W.DATE"));
        assert_eq!(t.folded.len(), 1);
        assert_eq!(t.folded[0].entity, "EMPLOYEE");
        assert_eq!(t.folded[0].one_side_attrs, ["W.NR"]);
        assert_eq!(t.folded[0].rel_attrs, ["W.DATE"]);
    }

    #[test]
    fn baseline_admits_semantically_inconsistent_state() {
        // The paper's complaint: a WORKS tuple with non-null DATE but null
        // NR is consistent with RS′ but represents no ER instance.
        let eer = figures::fig1_eer();
        let t = translate_teorey(&eer).unwrap();
        let mut st = DatabaseState::empty_for(&t.schema).unwrap();
        st.insert(
            "WORKS",
            Tuple::new([Value::Int(1), Value::Null, Value::Date(100)]),
        )
        .unwrap();
        assert!(st.is_consistent(&t.schema).unwrap());

        // The repaired schema rejects it…
        let repaired = repair(&t).unwrap();
        assert!(!st.is_consistent(&repaired).unwrap());
        // …while still accepting genuinely partial tuples.
        let mut ok = DatabaseState::empty_for(&repaired).unwrap();
        ok.insert(
            "WORKS",
            Tuple::new([Value::Int(1), Value::Null, Value::Null]),
        )
        .unwrap();
        ok.insert("PROJECT", Tuple::new([Value::Int(7)])).unwrap();
        ok.insert(
            "WORKS",
            Tuple::new([Value::Int(2), Value::Int(7), Value::Date(5)]),
        )
        .unwrap();
        assert!(ok.is_consistent(&repaired).unwrap());
    }

    #[test]
    fn referential_integrity_survives_folding() {
        let eer = figures::fig1_eer();
        let t = translate_teorey(&eer).unwrap();
        // WORKS's one-side reference to PROJECT survives.
        assert!(t.schema.inds().contains(&InclusionDep::new(
            "WORKS",
            &["W.NR"],
            "PROJECT",
            &["PR.NR"]
        )));
        // MANAGES now references the folded WORKS relation for the employee
        // side.
        assert!(t
            .schema
            .inds()
            .iter()
            .any(|i| i.lhs_rel == "MANAGES" && i.rhs_rel == "WORKS"));
        // A dangling project reference is caught.
        let mut st = DatabaseState::empty_for(&t.schema).unwrap();
        st.insert(
            "WORKS",
            Tuple::new([Value::Int(1), Value::Int(9), Value::Null]),
        )
        .unwrap();
        assert!(!st.is_consistent(&t.schema).unwrap());
    }
}
