//! Extended Entity-Relationship modelling for the ICDE'92 relation-merging
//! reproduction (paper §1, §5.2).
//!
//! * [`model`] — the EER vocabulary: entity sets, relationship sets with
//!   cardinalities, weak entity sets, ISA generalizations;
//! * [`mod@translate`] — the Markowitz–Shoshani \[11\] translation into BCNF
//!   relational schemas of the form `(R, F ∪ I ∪ N)` (Figure 7 → Figure 3);
//! * [`baseline`] — the Teorey–Yang–Fry \[14\] translation the paper
//!   criticizes (Figure 1(iii)), plus the repair it prescribes;
//! * [`amenable`] — the §5.2 classification of structures amenable to
//!   single-relation representation (Figure 8);
//! * [`figures`] — the paper's example schemas as constructors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amenable;
pub mod baseline;
pub mod figures;
pub mod model;
pub mod translate;

pub use amenable::{
    classify_all, classify_generalization, classify_many_one_star, Amenability, ClassifiedGroup,
};
pub use baseline::{repair, translate_teorey, FoldedRelationship, TeoreyTranslation};
pub use model::{
    Card, EerAttribute, EerSchema, EntitySet, Generalization, Participant, RelationshipSet,
};
pub use translate::translate;
