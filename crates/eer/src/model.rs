//! The Extended Entity-Relationship model (paper §1, §5.2; refs \[2\], \[11\],
//! \[14\]): entity sets, binary/n-ary relationship sets with cardinalities,
//! weak entity sets, and ISA generalizations.

use std::collections::HashSet;
use std::fmt;

use relmerge_relational::{Domain, Error, Result};

/// Cardinality of a participant in a relationship set.
///
/// In a binary relationship `E —R— F` where each `E` instance relates to at
/// most one `F` instance, `E` participates with [`Card::Many`] and `F` with
/// [`Card::One`] (the paper's *"entity-set involved in that relationship-set
/// with a many cardinality"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Card {
    /// At most one related instance on the *other* side(s).
    One,
    /// Arbitrarily many related instances.
    Many,
}

/// An EER attribute: a named, typed property of an object-set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EerAttribute {
    /// The attribute name (unqualified; translation prefixes it).
    pub name: String,
    /// The value domain.
    pub domain: Domain,
    /// Whether the attribute must have a value (translates to a
    /// nulls-not-allowed constraint).
    pub required: bool,
}

impl EerAttribute {
    /// A required attribute.
    pub fn required(name: impl Into<String>, domain: Domain) -> Self {
        EerAttribute {
            name: name.into(),
            domain,
            required: true,
        }
    }

    /// An optional attribute.
    pub fn optional(name: impl Into<String>, domain: Domain) -> Self {
        EerAttribute {
            name: name.into(),
            domain,
            required: false,
        }
    }
}

/// An entity set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntitySet {
    /// The entity-set name.
    pub name: String,
    /// Short prefix used for relational attribute names (defaults to the
    /// first letter of the name) — the figures' `A=ASSIST, C=COURSE, …`
    /// abbreviation table.
    pub abbrev: String,
    /// The entity set's own attributes.
    pub attrs: Vec<EerAttribute>,
    /// Names of the identifier attributes (entity-identifier). Empty for
    /// specialization entity-sets (the identifier is inherited) and allowed
    /// to be a *partial* identifier for weak entity sets.
    pub identifier: Vec<String>,
    /// For a weak entity set: the name of the owner entity set through the
    /// identifying relationship. The full key is the owner's key plus this
    /// set's (partial) identifier.
    pub weak_owner: Option<String>,
}

impl EntitySet {
    /// A strong entity set with the given identifier attributes.
    pub fn new(name: impl Into<String>, attrs: Vec<EerAttribute>, identifier: &[&str]) -> Self {
        let name = name.into();
        EntitySet {
            abbrev: default_abbrev(&name),
            name,
            attrs,
            identifier: identifier.iter().map(|s| (*s).to_owned()).collect(),
            weak_owner: None,
        }
    }

    /// Overrides the abbreviation prefix.
    #[must_use]
    pub fn with_abbrev(mut self, abbrev: impl Into<String>) -> Self {
        self.abbrev = abbrev.into();
        self
    }

    /// Marks this entity set weak, owned by `owner`.
    #[must_use]
    pub fn weak(mut self, owner: impl Into<String>) -> Self {
        self.weak_owner = Some(owner.into());
        self
    }
}

/// One participant of a relationship set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Participant {
    /// The participating object-set: an entity set **or** another
    /// relationship set (aggregation — the paper's Figure 7 has `TEACH`
    /// relating `FACULTY` to the relationship set `OFFER`).
    pub object: String,
    /// The participant's cardinality.
    pub card: Card,
    /// Explicit relational names for the copied identifier attributes,
    /// overriding the default `<abbrev>.<stripped identifier>` rule (the
    /// paper's figures use ad-hoc qualifications like `T.F.SSN`).
    pub rename: Option<Vec<String>>,
}

impl Participant {
    /// A participant with default attribute naming.
    pub fn new(object: impl Into<String>, card: Card) -> Self {
        Participant {
            object: object.into(),
            card,
            rename: None,
        }
    }

    /// Overrides the copied identifier attribute names.
    #[must_use]
    pub fn renamed(mut self, names: &[&str]) -> Self {
        self.rename = Some(names.iter().map(|s| (*s).to_owned()).collect());
        self
    }
}

/// A relationship set over two or more participants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationshipSet {
    /// The relationship-set name.
    pub name: String,
    /// Abbreviation prefix for relational attribute names.
    pub abbrev: String,
    /// The participants, in declaration order.
    pub participants: Vec<Participant>,
    /// The relationship set's own attributes.
    pub attrs: Vec<EerAttribute>,
}

impl RelationshipSet {
    /// A relationship set with default abbreviation.
    pub fn new(name: impl Into<String>, participants: Vec<Participant>) -> Self {
        let name = name.into();
        RelationshipSet {
            abbrev: default_abbrev(&name),
            name,
            participants,
            attrs: Vec::new(),
        }
    }

    /// Adds own attributes.
    #[must_use]
    pub fn with_attrs(mut self, attrs: Vec<EerAttribute>) -> Self {
        self.attrs = attrs;
        self
    }

    /// Overrides the abbreviation prefix.
    #[must_use]
    pub fn with_abbrev(mut self, abbrev: impl Into<String>) -> Self {
        self.abbrev = abbrev.into();
        self
    }

    /// The participants with [`Card::Many`] — their identifiers form the
    /// relationship relation's key.
    #[must_use]
    pub fn many_participants(&self) -> Vec<&Participant> {
        self.participants
            .iter()
            .filter(|p| p.card == Card::Many)
            .collect()
    }
}

/// An ISA (generalization) link: `child ISA parent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generalization {
    /// The specialization entity set.
    pub child: String,
    /// The generalized entity set.
    pub parent: String,
}

/// A whole EER schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EerSchema {
    /// Entity sets, in declaration order.
    pub entities: Vec<EntitySet>,
    /// Relationship sets, in declaration order.
    pub relationships: Vec<RelationshipSet>,
    /// ISA links.
    pub generalizations: Vec<Generalization>,
}

impl EerSchema {
    /// An empty schema.
    #[must_use]
    pub fn new() -> Self {
        EerSchema::default()
    }

    /// Adds an entity set.
    pub fn add_entity(&mut self, e: EntitySet) -> &mut Self {
        self.entities.push(e);
        self
    }

    /// Adds a relationship set.
    pub fn add_relationship(&mut self, r: RelationshipSet) -> &mut Self {
        self.relationships.push(r);
        self
    }

    /// Adds an ISA link `child ISA parent`.
    pub fn add_isa(&mut self, child: impl Into<String>, parent: impl Into<String>) -> &mut Self {
        self.generalizations.push(Generalization {
            child: child.into(),
            parent: parent.into(),
        });
        self
    }

    /// Looks up an entity set.
    #[must_use]
    pub fn entity(&self, name: &str) -> Option<&EntitySet> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Looks up a relationship set.
    #[must_use]
    pub fn relationship(&self, name: &str) -> Option<&RelationshipSet> {
        self.relationships.iter().find(|r| r.name == name)
    }

    /// Whether `name` denotes any object-set (entity or relationship set).
    #[must_use]
    pub fn is_object_set(&self, name: &str) -> bool {
        self.entity(name).is_some() || self.relationship(name).is_some()
    }

    /// The parents of `child` (direct generalizations).
    #[must_use]
    pub fn parents_of(&self, child: &str) -> Vec<&str> {
        self.generalizations
            .iter()
            .filter(|g| g.child == child)
            .map(|g| g.parent.as_str())
            .collect()
    }

    /// The direct specializations of `parent`.
    #[must_use]
    pub fn children_of(&self, parent: &str) -> Vec<&str> {
        self.generalizations
            .iter()
            .filter(|g| g.parent == parent)
            .map(|g| g.child.as_str())
            .collect()
    }

    /// The relationship sets `object` participates in.
    #[must_use]
    pub fn relationships_of(&self, object: &str) -> Vec<&RelationshipSet> {
        self.relationships
            .iter()
            .filter(|r| r.participants.iter().any(|p| p.object == object))
            .collect()
    }

    /// Whether any weak entity set is owned by `object`.
    #[must_use]
    pub fn owns_weak_entity(&self, object: &str) -> bool {
        self.entities
            .iter()
            .any(|e| e.weak_owner.as_deref() == Some(object))
    }

    /// Structural validation: unique names, resolvable references, acyclic
    /// ISA, identifiers present where required, identifier attributes
    /// declared.
    pub fn validate(&self) -> Result<()> {
        let mut names = HashSet::new();
        for n in self
            .entities
            .iter()
            .map(|e| e.name.as_str())
            .chain(self.relationships.iter().map(|r| r.name.as_str()))
        {
            if !names.insert(n) {
                return Err(Error::DuplicateScheme(n.to_owned()));
            }
        }
        for e in &self.entities {
            let mut attr_names = HashSet::new();
            for a in &e.attrs {
                if !attr_names.insert(a.name.as_str()) {
                    return Err(Error::DuplicateAttribute(format!("{}.{}", e.name, a.name)));
                }
            }
            for id in &e.identifier {
                if !attr_names.contains(id.as_str()) {
                    return Err(Error::MalformedKey {
                        scheme: e.name.clone(),
                        detail: format!("identifier attribute `{id}` not declared"),
                    });
                }
            }
            let is_specialization = !self.parents_of(&e.name).is_empty();
            if e.identifier.is_empty() && !is_specialization {
                return Err(Error::MissingPrimaryKey(e.name.clone()));
            }
            if let Some(owner) = &e.weak_owner {
                if self.entity(owner).is_none() {
                    return Err(Error::UnknownScheme(owner.clone()));
                }
                if e.identifier.is_empty() {
                    return Err(Error::MalformedKey {
                        scheme: e.name.clone(),
                        detail: "weak entity set needs a partial identifier".to_owned(),
                    });
                }
            }
        }
        for r in &self.relationships {
            if r.participants.len() < 2 {
                return Err(Error::MalformedConstraint {
                    detail: format!(
                        "relationship set `{}` needs at least two participants",
                        r.name
                    ),
                });
            }
            for p in &r.participants {
                if !self.is_object_set(&p.object) {
                    return Err(Error::UnknownScheme(p.object.clone()));
                }
                if p.object == r.name {
                    return Err(Error::MalformedConstraint {
                        detail: format!("relationship set `{}` cannot involve itself", r.name),
                    });
                }
            }
        }
        for g in &self.generalizations {
            if self.entity(&g.child).is_none() || self.entity(&g.parent).is_none() {
                return Err(Error::MalformedConstraint {
                    detail: format!(
                        "ISA {} -> {} mentions unknown entity sets",
                        g.child, g.parent
                    ),
                });
            }
        }
        // ISA acyclicity via depth-limited walk.
        for e in &self.entities {
            let mut current = vec![e.name.as_str()];
            for _ in 0..=self.entities.len() {
                current = current.iter().flat_map(|c| self.parents_of(c)).collect();
                if current.is_empty() {
                    break;
                }
                if current.contains(&e.name.as_str()) {
                    return Err(Error::MalformedConstraint {
                        detail: format!("ISA cycle through `{}`", e.name),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for EerSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Entity sets:")?;
        for e in &self.entities {
            let ids = e.identifier.join(",");
            let weak = e
                .weak_owner
                .as_deref()
                .map(|o| format!(" weak(owner={o})"))
                .unwrap_or_default();
            writeln!(f, "  {} [id: {ids}]{weak}", e.name)?;
        }
        writeln!(f, "Relationship sets:")?;
        for r in &self.relationships {
            let parts: Vec<String> = r
                .participants
                .iter()
                .map(|p| {
                    format!(
                        "{}({})",
                        p.object,
                        match p.card {
                            Card::One => "1",
                            Card::Many => "M",
                        }
                    )
                })
                .collect();
            writeln!(f, "  {}: {}", r.name, parts.join(" -- "))?;
        }
        if !self.generalizations.is_empty() {
            writeln!(f, "Generalizations:")?;
            for g in &self.generalizations {
                writeln!(f, "  {} ISA {}", g.child, g.parent)?;
            }
        }
        Ok(())
    }
}

fn default_abbrev(name: &str) -> String {
    name.chars().take(1).collect::<String>().to_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_course() -> EerSchema {
        let mut eer = EerSchema::new();
        eer.add_entity(EntitySet::new(
            "PERSON",
            vec![EerAttribute::required("SSN", Domain::Int)],
            &["SSN"],
        ));
        eer.add_entity(EntitySet::new(
            "COURSE",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        ));
        eer
    }

    #[test]
    fn valid_schema_passes() {
        let mut eer = person_course();
        eer.add_entity(EntitySet::new("FACULTY", vec![], &[]).with_abbrev("F"));
        eer.add_isa("FACULTY", "PERSON");
        eer.add_relationship(RelationshipSet::new(
            "TEACHES",
            vec![
                Participant::new("COURSE", Card::Many),
                Participant::new("FACULTY", Card::One),
            ],
        ));
        eer.validate().unwrap();
        assert_eq!(eer.children_of("PERSON"), ["FACULTY"]);
        assert_eq!(eer.parents_of("FACULTY"), ["PERSON"]);
        assert_eq!(eer.relationships_of("COURSE").len(), 1);
        assert!(!eer.owns_weak_entity("PERSON"));
    }

    #[test]
    fn missing_identifier_rejected() {
        let mut eer = EerSchema::new();
        eer.add_entity(EntitySet::new(
            "E",
            vec![EerAttribute::required("A", Domain::Int)],
            &[],
        ));
        assert!(matches!(eer.validate(), Err(Error::MissingPrimaryKey(_))));
    }

    #[test]
    fn undeclared_identifier_attr_rejected() {
        let mut eer = EerSchema::new();
        eer.add_entity(EntitySet::new("E", vec![], &["GHOST"]));
        assert!(matches!(eer.validate(), Err(Error::MalformedKey { .. })));
    }

    #[test]
    fn unknown_participant_rejected() {
        let mut eer = person_course();
        eer.add_relationship(RelationshipSet::new(
            "R",
            vec![
                Participant::new("PERSON", Card::Many),
                Participant::new("NOPE", Card::One),
            ],
        ));
        assert!(matches!(eer.validate(), Err(Error::UnknownScheme(_))));
    }

    #[test]
    fn isa_cycle_rejected() {
        let mut eer = person_course();
        eer.add_isa("PERSON", "COURSE");
        eer.add_isa("COURSE", "PERSON");
        assert!(eer.validate().is_err());
    }

    #[test]
    fn weak_entity_needs_partial_identifier_and_owner() {
        let mut eer = person_course();
        eer.add_entity(
            EntitySet::new(
                "DEPENDENT",
                vec![EerAttribute::required("NAME", Domain::Text)],
                &["NAME"],
            )
            .weak("PERSON"),
        );
        eer.validate().unwrap();
        assert!(eer.owns_weak_entity("PERSON"));

        let mut bad_owner = person_course();
        bad_owner.add_entity(
            EntitySet::new(
                "DEPENDENT",
                vec![EerAttribute::required("NAME", Domain::Text)],
                &["NAME"],
            )
            .weak("GHOST"),
        );
        assert!(bad_owner.validate().is_err());
    }

    #[test]
    fn duplicate_object_set_names_rejected() {
        let mut eer = person_course();
        eer.add_relationship(RelationshipSet::new(
            "PERSON",
            vec![
                Participant::new("COURSE", Card::Many),
                Participant::new("COURSE", Card::One),
            ],
        ));
        assert!(matches!(eer.validate(), Err(Error::DuplicateScheme(_))));
    }

    #[test]
    fn many_participants_filter() {
        let r = RelationshipSet::new(
            "R",
            vec![
                Participant::new("A", Card::Many),
                Participant::new("B", Card::One),
                Participant::new("C", Card::Many),
            ],
        );
        let many: Vec<&str> = r
            .many_participants()
            .iter()
            .map(|p| p.object.as_str())
            .collect();
        assert_eq!(many, ["A", "C"]);
    }
}
