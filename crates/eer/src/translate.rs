//! EER → relational translation in the style of Markowitz–Shoshani \[11\]:
//! one relation-scheme per object-set, key-based inclusion dependencies for
//! the existence dependencies implied by object connections, and
//! nulls-not-allowed constraints for the null-value restrictions.
//!
//! The result is a BCNF schema of the exact form the merging technique
//! operates on: `(R, F ∪ I ∪ N)` — the paper's Figure 3 is the translation
//! of its Figure 7.

use std::collections::{BTreeMap, HashSet};

use relmerge_obs as obs;
use relmerge_relational::{
    Attribute, Error, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Result,
};

use crate::model::{Card, EerSchema, EntitySet, RelationshipSet};

/// Translates a validated EER schema into a relational schema.
///
/// Attribute naming: an object-set's own attribute `A` becomes
/// `<abbrev>.A`; a copied identifier attribute of a referenced object-set
/// defaults to `<abbrev>.<referenced name with the referenced abbreviation
/// stripped>` (so `FACULTY` copying `PERSON`'s `P.SSN` yields `F.SSN`),
/// with a participant-level `rename` override for the figures' ad-hoc
/// qualifications (`T.F.SSN`). Name collisions within a scheme are
/// disambiguated by re-inserting the referenced abbreviation.
///
/// ```
/// use relmerge_eer::model::{Card, EerAttribute, EerSchema, EntitySet,
///     Participant, RelationshipSet};
/// use relmerge_eer::translate::translate;
/// use relmerge_relational::Domain;
///
/// let mut eer = EerSchema::new();
/// eer.add_entity(EntitySet::new(
///     "EMPLOYEE",
///     vec![EerAttribute::required("SSN", Domain::Int)],
///     &["SSN"],
/// ));
/// eer.add_entity(EntitySet::new(
///     "PROJECT",
///     vec![EerAttribute::required("NR", Domain::Int)],
///     &["NR"],
/// ).with_abbrev("PR"));
/// eer.add_relationship(RelationshipSet::new(
///     "WORKS",
///     vec![
///         Participant::new("EMPLOYEE", Card::Many),
///         Participant::new("PROJECT", Card::One),
///     ],
/// ).with_attrs(vec![EerAttribute::optional("DATE", Domain::Date)]));
///
/// let schema = translate(&eer).unwrap();
/// // One BCNF relation-scheme per object-set, keyed per cardinality.
/// assert_eq!(schema.schemes().len(), 3);
/// assert_eq!(schema.scheme("WORKS").unwrap().primary_key(), ["W.SSN"]);
/// assert!(schema.is_bcnf() && schema.key_based_inds_only());
/// ```
pub fn translate(eer: &EerSchema) -> Result<RelationalSchema> {
    let mut span = obs::span("eer.translate")
        .field("entities", eer.entities.len())
        .field("relationships", eer.relationships.len());
    obs::global().counter("eer.translate.count").inc();
    eer.validate()?;
    let mut schema = RelationalSchema::new();
    // scheme name -> (primary key names, abbreviation) for already-built
    // object-sets; drives copied-attribute naming and IND generation.
    let mut built: BTreeMap<String, (Vec<String>, String)> = BTreeMap::new();
    let mut pending_entities: Vec<&EntitySet> = eer.entities.iter().collect();
    let mut pending_rels: Vec<&RelationshipSet> = eer.relationships.iter().collect();

    // Worklist: build an object-set once everything it references is built.
    loop {
        let ready_entities: Vec<&EntitySet> = pending_entities
            .iter()
            .copied()
            .filter(|e| entity_ready(eer, e, &built))
            .collect();
        pending_entities.retain(|e| !entity_ready(eer, e, &built));
        for e in &ready_entities {
            build_entity(eer, e, &mut schema, &mut built)?;
        }
        let ready_rels: Vec<&RelationshipSet> = pending_rels
            .iter()
            .copied()
            .filter(|r| r.participants.iter().all(|p| built.contains_key(&p.object)))
            .collect();
        pending_rels.retain(|r| !r.participants.iter().all(|p| built.contains_key(&p.object)));
        for r in &ready_rels {
            build_relationship(r, &mut schema, &mut built)?;
        }
        if pending_entities.is_empty() && pending_rels.is_empty() {
            break;
        }
        if ready_entities.is_empty() && ready_rels.is_empty() {
            let stuck: Vec<&str> = pending_entities
                .iter()
                .map(|e| e.name.as_str())
                .chain(pending_rels.iter().map(|r| r.name.as_str()))
                .collect();
            return Err(Error::MalformedConstraint {
                detail: format!(
                    "cyclic object-set dependencies; cannot order: {}",
                    stuck.join(", ")
                ),
            });
        }
    }
    schema.validate()?;
    span.add_field("schemes", schema.schemes().len());
    span.add_field("inds", schema.inds().len());
    Ok(schema)
}

fn entity_ready(
    eer: &EerSchema,
    e: &EntitySet,
    built: &BTreeMap<String, (Vec<String>, String)>,
) -> bool {
    eer.parents_of(&e.name)
        .iter()
        .all(|p| built.contains_key(*p))
        && e.weak_owner
            .as_deref()
            .is_none_or(|o| built.contains_key(o))
}

fn strip(name: &str, abbrev: &str) -> String {
    name.strip_prefix(&format!("{abbrev}."))
        .unwrap_or(name)
        .to_owned()
}

/// Default copied-attribute names with collision disambiguation.
fn copied_names(
    own_abbrev: &str,
    ref_abbrev: &str,
    ref_key: &[String],
    taken: &HashSet<String>,
) -> Vec<String> {
    ref_key
        .iter()
        .map(|k| {
            let plain = format!("{own_abbrev}.{}", strip(k, ref_abbrev));
            if taken.contains(&plain) {
                format!("{own_abbrev}.{ref_abbrev}.{}", strip(k, ref_abbrev))
            } else {
                plain
            }
        })
        .collect()
}

fn build_entity(
    eer: &EerSchema,
    e: &EntitySet,
    schema: &mut RelationalSchema,
    built: &mut BTreeMap<String, (Vec<String>, String)>,
) -> Result<()> {
    let mut attrs: Vec<Attribute> = Vec::new();
    let mut key: Vec<String> = Vec::new();
    let mut nna: Vec<String> = Vec::new();
    let mut inds: Vec<InclusionDep> = Vec::new();
    let mut taken: HashSet<String> = HashSet::new();

    let parents = eer.parents_of(&e.name);
    if let Some(first_parent) = parents.first() {
        // Specialization: the key is copied from the (first) parent.
        let (pkey, pabbrev) = built[*first_parent].clone();
        let names = copied_names(&e.abbrev, &pabbrev, &pkey, &taken);
        let parent_scheme = schema.scheme_required(first_parent)?;
        for (n, pk) in names.iter().zip(&pkey) {
            let domain = parent_scheme
                .attr(pk)
                .expect("parent key attrs exist")
                .domain();
            attrs.push(Attribute::new(n.clone(), domain));
            taken.insert(n.clone());
            key.push(n.clone());
            nna.push(n.clone());
        }
        for parent in &parents {
            let (pkey, _) = built[*parent].clone();
            let lhs: Vec<&str> = names.iter().map(String::as_str).collect();
            let rhs: Vec<&str> = pkey.iter().map(String::as_str).collect();
            inds.push(InclusionDep::new(&e.name, &lhs, *parent, &rhs));
        }
    } else if let Some(owner) = e.weak_owner.as_deref() {
        // Weak entity: owner key copied, full key = owner key + partial id.
        let (okey, oabbrev) = built[owner].clone();
        let names = copied_names(&e.abbrev, &oabbrev, &okey, &taken);
        let owner_scheme = schema.scheme_required(owner)?;
        for (n, ok) in names.iter().zip(&okey) {
            let domain = owner_scheme
                .attr(ok)
                .expect("owner key attrs exist")
                .domain();
            attrs.push(Attribute::new(n.clone(), domain));
            taken.insert(n.clone());
            key.push(n.clone());
            nna.push(n.clone());
        }
        let lhs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = okey.iter().map(String::as_str).collect();
        inds.push(InclusionDep::new(&e.name, &lhs, owner, &rhs));
    }

    for a in &e.attrs {
        let name = format!("{}.{}", e.abbrev, a.name);
        attrs.push(Attribute::new(name.clone(), a.domain));
        taken.insert(name.clone());
        if e.identifier.contains(&a.name) {
            key.push(name.clone());
        }
        if a.required || e.identifier.contains(&a.name) {
            nna.push(name);
        }
    }

    finish_scheme(&e.name, attrs, key, nna, inds, schema)?;
    built.insert(e.name.clone(), (key_of(schema, &e.name), e.abbrev.clone()));
    Ok(())
}

fn build_relationship(
    r: &RelationshipSet,
    schema: &mut RelationalSchema,
    built: &mut BTreeMap<String, (Vec<String>, String)>,
) -> Result<()> {
    let mut attrs: Vec<Attribute> = Vec::new();
    let mut key: Vec<String> = Vec::new();
    let mut nna: Vec<String> = Vec::new();
    let mut inds: Vec<InclusionDep> = Vec::new();
    let mut taken: HashSet<String> = HashSet::new();
    let any_many = r.participants.iter().any(|p| p.card == Card::Many);

    for (idx, p) in r.participants.iter().enumerate() {
        let (pkey, pabbrev) = built[&p.object].clone();
        let names = match &p.rename {
            Some(names) => {
                if names.len() != pkey.len() {
                    return Err(Error::MalformedConstraint {
                        detail: format!(
                            "participant `{}` of `{}` renames {} attributes but its \
                             identifier has {}",
                            p.object,
                            r.name,
                            names.len(),
                            pkey.len()
                        ),
                    });
                }
                names.clone()
            }
            None => copied_names(&r.abbrev, &pabbrev, &pkey, &taken),
        };
        let p_scheme = schema.scheme_required(&p.object)?;
        for (n, pk) in names.iter().zip(&pkey) {
            let domain = p_scheme
                .attr(pk)
                .expect("participant key attrs exist")
                .domain();
            attrs.push(Attribute::new(n.clone(), domain));
            taken.insert(n.clone());
            nna.push(n.clone());
        }
        // Key: identifiers of the Many participants; for one-to-one
        // relationships, the first participant's identifier.
        if p.card == Card::Many || (!any_many && idx == 0) {
            key.extend(names.iter().cloned());
        }
        let lhs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = pkey.iter().map(String::as_str).collect();
        inds.push(InclusionDep::new(&r.name, &lhs, &p.object, &rhs));
    }

    for a in &r.attrs {
        let name = format!("{}.{}", r.abbrev, a.name);
        attrs.push(Attribute::new(name.clone(), a.domain));
        if a.required {
            nna.push(name);
        }
    }

    finish_scheme(&r.name, attrs, key, nna, inds, schema)?;
    built.insert(r.name.clone(), (key_of(schema, &r.name), r.abbrev.clone()));
    Ok(())
}

fn finish_scheme(
    name: &str,
    attrs: Vec<Attribute>,
    key: Vec<String>,
    nna: Vec<String>,
    inds: Vec<InclusionDep>,
    schema: &mut RelationalSchema,
) -> Result<()> {
    let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
    schema.add_scheme(RelationScheme::new(name, attrs, &key_refs)?)?;
    for ind in inds {
        schema.add_ind(ind)?;
    }
    if !nna.is_empty() {
        let refs: Vec<&str> = nna.iter().map(String::as_str).collect();
        schema.add_null_constraint(NullConstraint::nna(name, &refs))?;
    }
    Ok(())
}

fn key_of(schema: &RelationalSchema, name: &str) -> Vec<String> {
    schema
        .scheme(name)
        .expect("just added")
        .primary_key()
        .iter()
        .map(|s| (*s).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EerAttribute, Participant};
    use relmerge_relational::Domain;

    fn simple() -> EerSchema {
        let mut eer = EerSchema::new();
        eer.add_entity(EntitySet::new(
            "PERSON",
            vec![EerAttribute::required("SSN", Domain::Int)],
            &["SSN"],
        ));
        eer.add_entity(
            EntitySet::new(
                "PROJECT",
                vec![EerAttribute::required("NR", Domain::Int)],
                &["NR"],
            )
            .with_abbrev("PR"),
        );
        eer
    }

    #[test]
    fn entity_translation_prefixes_attrs() {
        let rs = translate(&simple()).unwrap();
        let person = rs.scheme("PERSON").unwrap();
        assert_eq!(person.attr_names(), ["P.SSN"]);
        assert_eq!(person.primary_key(), ["P.SSN"]);
        assert!(rs.attr_not_null("PERSON", "P.SSN"));
        assert!(rs.is_bcnf());
    }

    #[test]
    fn isa_child_strips_parent_prefix() {
        let mut eer = simple();
        eer.add_entity(EntitySet::new("FACULTY", vec![], &[]).with_abbrev("F"));
        eer.add_isa("FACULTY", "PERSON");
        let rs = translate(&eer).unwrap();
        let fac = rs.scheme("FACULTY").unwrap();
        assert_eq!(fac.attr_names(), ["F.SSN"]);
        assert_eq!(fac.primary_key(), ["F.SSN"]);
        assert_eq!(
            rs.inds(),
            &[InclusionDep::new(
                "FACULTY",
                &["F.SSN"],
                "PERSON",
                &["P.SSN"]
            )]
        );
        assert!(rs.attr_not_null("FACULTY", "F.SSN"));
    }

    #[test]
    fn many_to_one_relationship_keyed_by_many_side() {
        let mut eer = simple();
        eer.add_relationship(
            RelationshipSet::new(
                "WORKS",
                vec![
                    Participant::new("PERSON", Card::Many),
                    Participant::new("PROJECT", Card::One),
                ],
            )
            .with_abbrev("W")
            .with_attrs(vec![EerAttribute::required("DATE", Domain::Date)]),
        );
        let rs = translate(&eer).unwrap();
        let works = rs.scheme("WORKS").unwrap();
        assert_eq!(works.attr_names(), ["W.SSN", "W.NR", "W.DATE"]);
        assert_eq!(works.primary_key(), ["W.SSN"]);
        assert!(rs.inds().contains(&InclusionDep::new(
            "WORKS",
            &["W.SSN"],
            "PERSON",
            &["P.SSN"]
        )));
        assert!(rs.inds().contains(&InclusionDep::new(
            "WORKS",
            &["W.NR"],
            "PROJECT",
            &["PR.NR"]
        )));
        // All copied keys and the required DATE are NNA.
        for a in ["W.SSN", "W.NR", "W.DATE"] {
            assert!(rs.attr_not_null("WORKS", a), "{a}");
        }
    }

    #[test]
    fn optional_relationship_attr_is_nullable() {
        let mut eer = simple();
        eer.add_relationship(
            RelationshipSet::new(
                "WORKS",
                vec![
                    Participant::new("PERSON", Card::Many),
                    Participant::new("PROJECT", Card::One),
                ],
            )
            .with_abbrev("W")
            .with_attrs(vec![EerAttribute::optional("DATE", Domain::Date)]),
        );
        let rs = translate(&eer).unwrap();
        assert!(!rs.attr_not_null("WORKS", "W.DATE"));
    }

    #[test]
    fn many_to_many_keyed_by_both_sides() {
        let mut eer = simple();
        eer.add_relationship(RelationshipSet::new(
            "ASSIGNED",
            vec![
                Participant::new("PERSON", Card::Many),
                Participant::new("PROJECT", Card::Many),
            ],
        ));
        let rs = translate(&eer).unwrap();
        let r = rs.scheme("ASSIGNED").unwrap();
        assert_eq!(r.primary_key(), ["A.SSN", "A.NR"]);
    }

    #[test]
    fn one_to_one_keyed_by_first_participant() {
        let mut eer = simple();
        eer.add_relationship(RelationshipSet::new(
            "LEADS",
            vec![
                Participant::new("PERSON", Card::One),
                Participant::new("PROJECT", Card::One),
            ],
        ));
        let rs = translate(&eer).unwrap();
        assert_eq!(rs.scheme("LEADS").unwrap().primary_key(), ["L.SSN"]);
    }

    #[test]
    fn relationship_on_relationship_uses_its_key() {
        // Aggregation: TEACH relates FACULTY(1) to the relationship OFFER(M)
        // — the Figure 7 shape.
        let mut eer = EerSchema::new();
        eer.add_entity(EntitySet::new(
            "COURSE",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        ));
        eer.add_entity(EntitySet::new(
            "DEPT",
            vec![EerAttribute::required("NAME", Domain::Text)],
            &["NAME"],
        ));
        eer.add_relationship(
            RelationshipSet::new(
                "OFFER",
                vec![
                    Participant::new("COURSE", Card::Many).renamed(&["O.C.NR"]),
                    Participant::new("DEPT", Card::One).renamed(&["O.D.NAME"]),
                ],
            )
            .with_abbrev("O"),
        );
        eer.add_relationship(
            RelationshipSet::new(
                "PREREQ_CHECK",
                vec![
                    Participant::new("OFFER", Card::Many).renamed(&["PC.C.NR"]),
                    Participant::new("DEPT", Card::One).renamed(&["PC.D.NAME"]),
                ],
            )
            .with_abbrev("PC"),
        );
        let rs = translate(&eer).unwrap();
        assert!(rs.inds().contains(&InclusionDep::new(
            "PREREQ_CHECK",
            &["PC.C.NR"],
            "OFFER",
            &["O.C.NR"]
        )));
        assert_eq!(
            rs.scheme("PREREQ_CHECK").unwrap().primary_key(),
            ["PC.C.NR"]
        );
    }

    #[test]
    fn weak_entity_composite_key() {
        let mut eer = simple();
        eer.add_entity(
            EntitySet::new(
                "DEPENDENT",
                vec![EerAttribute::required("NAME", Domain::Text)],
                &["NAME"],
            )
            .weak("PERSON")
            .with_abbrev("D"),
        );
        let rs = translate(&eer).unwrap();
        let dep = rs.scheme("DEPENDENT").unwrap();
        assert_eq!(dep.primary_key(), ["D.SSN", "D.NAME"]);
        assert!(rs.inds().contains(&InclusionDep::new(
            "DEPENDENT",
            &["D.SSN"],
            "PERSON",
            &["P.SSN"]
        )));
    }

    #[test]
    fn self_relationship_collision_disambiguated() {
        let mut eer = EerSchema::new();
        eer.add_entity(EntitySet::new(
            "COURSE",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        ));
        eer.add_relationship(RelationshipSet::new(
            "PREREQ",
            vec![
                Participant::new("COURSE", Card::Many),
                Participant::new("COURSE", Card::Many),
            ],
        ));
        let rs = translate(&eer).unwrap();
        let p = rs.scheme("PREREQ").unwrap();
        // Second copy re-inserts the referenced abbreviation.
        assert_eq!(p.attr_names(), ["P.NR", "P.C.NR"]);
        assert_eq!(p.primary_key(), ["P.NR", "P.C.NR"]);
    }

    #[test]
    fn rename_arity_mismatch_rejected() {
        let mut eer = simple();
        eer.add_relationship(RelationshipSet::new(
            "R",
            vec![
                Participant::new("PERSON", Card::Many).renamed(&["A", "B"]),
                Participant::new("PROJECT", Card::One),
            ],
        ));
        assert!(translate(&eer).is_err());
    }
}
