//! The paper's example schemas as ready-made constructors: Figure 1's ER
//! schema, Figure 7's EER schema (whose translation is Figure 3), and the
//! four Figure 8 structures.
//!
//! Attribute names follow the figures, except that Figure 1's unqualified
//! names (`SSN`, `NR`) are prefixed per object-set (`E.SSN`, `W.NR`, …) —
//! Figure 1 predates Definition 4.1's globally-unique-names assumption, and
//! qualified names keep every later construction applicable.

use relmerge_relational::Domain;

use crate::model::{Card, EerAttribute, EerSchema, EntitySet, Participant, RelationshipSet};

/// Figure 1(i): the ER schema with `EMPLOYEE`, `PROJECT`, and the binary
/// many-to-one relationship sets `WORKS` (with optional attribute `DATE`)
/// and `MANAGES`.
#[must_use]
pub fn fig1_eer() -> EerSchema {
    let mut eer = EerSchema::new();
    eer.add_entity(
        EntitySet::new(
            "EMPLOYEE",
            vec![EerAttribute::required("SSN", Domain::Int)],
            &["SSN"],
        )
        .with_abbrev("E"),
    );
    eer.add_entity(
        EntitySet::new(
            "PROJECT",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        )
        .with_abbrev("PR"),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "WORKS",
            vec![
                Participant::new("EMPLOYEE", Card::Many),
                Participant::new("PROJECT", Card::One),
            ],
        )
        .with_abbrev("W")
        .with_attrs(vec![EerAttribute::optional("DATE", Domain::Date)]),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "MANAGES",
            vec![
                Participant::new("EMPLOYEE", Card::Many),
                Participant::new("PROJECT", Card::One),
            ],
        )
        .with_abbrev("M"),
    );
    eer
}

/// Figure 7: the university EER schema — `PERSON` generalizing `FACULTY`
/// and `STUDENT`; `COURSE` and `DEPARTMENT`; relationship sets `OFFER`
/// (COURSE many — DEPARTMENT one), and the aggregations `TEACH` (OFFER many
/// — FACULTY one) and `ASSIST` (OFFER many — STUDENT one).
///
/// Its translation is exactly the paper's Figure 3 relational schema.
#[must_use]
pub fn fig7_eer() -> EerSchema {
    let mut eer = EerSchema::new();
    eer.add_entity(
        EntitySet::new(
            "PERSON",
            vec![EerAttribute::required("SSN", Domain::Int)],
            &["SSN"],
        )
        .with_abbrev("P"),
    );
    eer.add_entity(EntitySet::new("FACULTY", vec![], &[]).with_abbrev("F"));
    eer.add_entity(EntitySet::new("STUDENT", vec![], &[]).with_abbrev("S"));
    eer.add_entity(
        EntitySet::new(
            "COURSE",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        )
        .with_abbrev("C"),
    );
    eer.add_entity(
        EntitySet::new(
            "DEPARTMENT",
            vec![EerAttribute::required("NAME", Domain::Text)],
            &["NAME"],
        )
        .with_abbrev("D"),
    );
    eer.add_isa("FACULTY", "PERSON");
    eer.add_isa("STUDENT", "PERSON");
    eer.add_relationship(
        RelationshipSet::new(
            "OFFER",
            vec![
                Participant::new("COURSE", Card::Many).renamed(&["O.C.NR"]),
                Participant::new("DEPARTMENT", Card::One).renamed(&["O.D.NAME"]),
            ],
        )
        .with_abbrev("O"),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "TEACH",
            vec![
                Participant::new("OFFER", Card::Many).renamed(&["T.C.NR"]),
                Participant::new("FACULTY", Card::One).renamed(&["T.F.SSN"]),
            ],
        )
        .with_abbrev("T"),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "ASSIST",
            vec![
                Participant::new("OFFER", Card::Many).renamed(&["A.C.NR"]),
                Participant::new("STUDENT", Card::One).renamed(&["A.S.SSN"]),
            ],
        )
        .with_abbrev("A"),
    );
    eer
}

/// Figure 8(i): a generalization hierarchy whose specializations carry
/// *several* attributes each — representable by a single relation only with
/// general null constraints (the null-synchronization sets keep each
/// specialization's attributes all-or-nothing).
#[must_use]
pub fn fig8_i() -> EerSchema {
    let mut eer = EerSchema::new();
    eer.add_entity(
        EntitySet::new(
            "VEHICLE",
            vec![EerAttribute::required("VIN", Domain::Int)],
            &["VIN"],
        )
        .with_abbrev("V"),
    );
    eer.add_entity(
        EntitySet::new(
            "CAR",
            vec![
                EerAttribute::required("SEATS", Domain::Int),
                EerAttribute::required("DOORS", Domain::Int),
            ],
            &[],
        )
        .with_abbrev("CA"),
    );
    eer.add_entity(
        EntitySet::new(
            "TRUCK",
            vec![
                EerAttribute::required("AXLES", Domain::Int),
                EerAttribute::required("PAYLOAD", Domain::Int),
            ],
            &[],
        )
        .with_abbrev("TR"),
    );
    eer.add_isa("CAR", "VEHICLE");
    eer.add_isa("TRUCK", "VEHICLE");
    eer
}

/// Figure 8(ii): an object-set with binary many-to-one relationship sets
/// that carry attributes of their own — single-relation representation
/// needs general null constraints.
#[must_use]
pub fn fig8_ii() -> EerSchema {
    let mut eer = EerSchema::new();
    eer.add_entity(
        EntitySet::new(
            "PRODUCT",
            vec![EerAttribute::required("PID", Domain::Int)],
            &["PID"],
        )
        .with_abbrev("PD"),
    );
    eer.add_entity(
        EntitySet::new(
            "WAREHOUSE",
            vec![EerAttribute::required("WID", Domain::Int)],
            &["WID"],
        )
        .with_abbrev("WH"),
    );
    eer.add_entity(
        EntitySet::new(
            "DEPOT",
            vec![EerAttribute::required("DID", Domain::Int)],
            &["DID"],
        )
        .with_abbrev("DP"),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "STORED",
            vec![
                Participant::new("PRODUCT", Card::Many),
                Participant::new("WAREHOUSE", Card::One),
            ],
        )
        .with_abbrev("ST")
        .with_attrs(vec![EerAttribute::required("QTY", Domain::Int)]),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "SHIPPED",
            vec![
                Participant::new("PRODUCT", Card::Many),
                Participant::new("DEPOT", Card::One),
            ],
        )
        .with_abbrev("SH")
        .with_attrs(vec![EerAttribute::required("DATE", Domain::Date)]),
    );
    eer
}

/// Figure 8(iii): a generalization hierarchy satisfying §5.2 condition (1):
/// the specializations have no specializations of their own, a single
/// direct parent, no relationship or weak-entity involvement, and exactly
/// one own attribute — single-relation representation with only
/// nulls-not-allowed constraints.
#[must_use]
pub fn fig8_iii() -> EerSchema {
    let mut eer = EerSchema::new();
    eer.add_entity(
        EntitySet::new(
            "ACCOUNT",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        )
        .with_abbrev("AC"),
    );
    eer.add_entity(
        EntitySet::new(
            "CHECKING",
            vec![EerAttribute::required("OVERDRAFT", Domain::Int)],
            &[],
        )
        .with_abbrev("CH"),
    );
    eer.add_entity(
        EntitySet::new(
            "SAVINGS",
            vec![EerAttribute::required("RATE", Domain::Int)],
            &[],
        )
        .with_abbrev("SV"),
    );
    eer.add_isa("CHECKING", "ACCOUNT");
    eer.add_isa("SAVINGS", "ACCOUNT");
    eer
}

/// Figure 8(iv): an object-set with attribute-less binary many-to-one
/// relationship sets to strong, single-attribute-identifier entity sets —
/// §5.2 condition (2): single-relation representation with only
/// nulls-not-allowed constraints (the paper's `OFFER`/`TEACH`/`ASSIST`
/// example rearranged so every relationship references `COURSE` directly).
#[must_use]
pub fn fig8_iv() -> EerSchema {
    let mut eer = EerSchema::new();
    eer.add_entity(
        EntitySet::new(
            "COURSE",
            vec![EerAttribute::required("NR", Domain::Int)],
            &["NR"],
        )
        .with_abbrev("C"),
    );
    eer.add_entity(
        EntitySet::new(
            "DEPARTMENT",
            vec![EerAttribute::required("NAME", Domain::Text)],
            &["NAME"],
        )
        .with_abbrev("D"),
    );
    eer.add_entity(
        EntitySet::new(
            "FACULTY",
            vec![EerAttribute::required("SSN", Domain::Int)],
            &["SSN"],
        )
        .with_abbrev("F"),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "OFFER",
            vec![
                Participant::new("COURSE", Card::Many).renamed(&["O.C.NR"]),
                Participant::new("DEPARTMENT", Card::One).renamed(&["O.D.NAME"]),
            ],
        )
        .with_abbrev("O"),
    );
    eer.add_relationship(
        RelationshipSet::new(
            "TEACH",
            vec![
                Participant::new("COURSE", Card::Many).renamed(&["T.C.NR"]),
                Participant::new("FACULTY", Card::One).renamed(&["T.F.SSN"]),
            ],
        )
        .with_abbrev("T"),
    );
    eer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use relmerge_relational::InclusionDep;

    #[test]
    fn fig7_translates_to_fig3() {
        let rs = translate(&fig7_eer()).unwrap();
        // The eight relation-schemes of Figure 3.
        let expect: [(&str, &[&str], &[&str]); 8] = [
            ("PERSON", &["P.SSN"], &["P.SSN"]),
            ("FACULTY", &["F.SSN"], &["F.SSN"]),
            ("STUDENT", &["S.SSN"], &["S.SSN"]),
            ("COURSE", &["C.NR"], &["C.NR"]),
            ("DEPARTMENT", &["D.NAME"], &["D.NAME"]),
            ("OFFER", &["O.C.NR", "O.D.NAME"], &["O.C.NR"]),
            ("TEACH", &["T.C.NR", "T.F.SSN"], &["T.C.NR"]),
            ("ASSIST", &["A.C.NR", "A.S.SSN"], &["A.C.NR"]),
        ];
        assert_eq!(rs.schemes().len(), 8);
        for (name, attrs, key) in expect {
            let s = rs.scheme(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.attr_names(), attrs, "{name} attrs");
            assert_eq!(s.primary_key(), key, "{name} key");
        }
        // The eight inclusion dependencies of Figure 3.
        let inds = [
            InclusionDep::new("FACULTY", &["F.SSN"], "PERSON", &["P.SSN"]),
            InclusionDep::new("STUDENT", &["S.SSN"], "PERSON", &["P.SSN"]),
            InclusionDep::new("OFFER", &["O.C.NR"], "COURSE", &["C.NR"]),
            InclusionDep::new("OFFER", &["O.D.NAME"], "DEPARTMENT", &["D.NAME"]),
            InclusionDep::new("TEACH", &["T.C.NR"], "OFFER", &["O.C.NR"]),
            InclusionDep::new("TEACH", &["T.F.SSN"], "FACULTY", &["F.SSN"]),
            InclusionDep::new("ASSIST", &["A.C.NR"], "OFFER", &["O.C.NR"]),
            InclusionDep::new("ASSIST", &["A.S.SSN"], "STUDENT", &["S.SSN"]),
        ];
        assert_eq!(rs.inds().len(), 8);
        for ind in &inds {
            assert!(rs.inds().contains(ind), "missing {ind}");
        }
        // The eight nulls-not-allowed constraints, and nothing else.
        assert_eq!(rs.null_constraints().len(), 8);
        assert!(rs.nna_only());
        for s in rs.schemes() {
            for a in s.attr_names() {
                assert!(rs.attr_not_null(s.name(), a), "{a} must be NNA");
            }
        }
        // All eight schemes are in BCNF, and all INDs are key-based.
        assert!(rs.is_bcnf());
        assert!(rs.key_based_inds_only());
    }

    #[test]
    fn fig1_modular_translation() {
        let rs = translate(&fig1_eer()).unwrap();
        let works = rs.scheme("WORKS").unwrap();
        assert_eq!(works.attr_names(), ["W.SSN", "W.NR", "W.DATE"]);
        assert_eq!(works.primary_key(), ["W.SSN"]);
        // DATE is the only nullable attribute (optional EER attribute).
        assert!(!rs.attr_not_null("WORKS", "W.DATE"));
        assert!(rs.attr_not_null("WORKS", "W.NR"));
        let manages = rs.scheme("MANAGES").unwrap();
        assert_eq!(manages.attr_names(), ["M.SSN", "M.NR"]);
        assert_eq!(manages.primary_key(), ["M.SSN"]);
        assert_eq!(rs.inds().len(), 4);
    }

    #[test]
    fn all_figures_validate() {
        for (name, eer) in [
            ("fig1", fig1_eer()),
            ("fig7", fig7_eer()),
            ("fig8i", fig8_i()),
            ("fig8ii", fig8_ii()),
            ("fig8iii", fig8_iii()),
            ("fig8iv", fig8_iv()),
        ] {
            eer.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            translate(&eer).unwrap_or_else(|e| panic!("{name} translation: {e}"));
        }
    }
}
