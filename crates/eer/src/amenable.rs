//! §5.2: which EER structures are *amenable* to representation by a single
//! relation-scheme, and under which constraint regime.
//!
//! The paper's two sufficient conditions for needing **only**
//! nulls-not-allowed constraints:
//!
//! 1. an entity set `Ei` and its specializations, provided the
//!    specializations (a) have no specializations of their own and are
//!    directly generalized only by `Ei`, (b) are not involved in
//!    relationship sets or weak entity sets, and (c) have exactly one
//!    (non-inherited) attribute of their own — Figure 8(iii);
//! 2. an object-set `Oi` and binary many-to-one relationship sets in which
//!    `Oi` participates with *many* cardinality, provided the relationship
//!    sets (a) have no attributes, (b) are not involved in any other
//!    relationship set, and (c) associate `Oi` with entity sets that are
//!    not weak and have single-attribute identifiers — Figure 8(iv).
//!
//! Structures failing the conditions (Figures 8(i)/(ii)) are still amenable
//! — a single relation-scheme represents them — but require general null
//! constraints, maintainable only through trigger/rule mechanisms.

use crate::model::{Card, EerSchema};

/// The constraint regime a single-relation representation needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Amenability {
    /// Only declarative nulls-not-allowed constraints are needed
    /// (Proposition 5.2 holds for the translated merge set).
    NnaOnly,
    /// A single relation works, but general null constraints
    /// (null-synchronization / null-existence / part-null) are required.
    GeneralNullConstraints,
}

/// A classified candidate group of object-sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedGroup {
    /// The root object-set (the generalized entity, or the many-side
    /// object of the relationship star).
    pub root: String,
    /// The other object-sets of the group (specializations, or the
    /// relationship sets).
    pub members: Vec<String>,
    /// The regime the single-relation representation needs.
    pub amenability: Amenability,
    /// Which of the paper's conditions failed, when the classification is
    /// [`Amenability::GeneralNullConstraints`].
    pub violations: Vec<String>,
}

/// Classifies the generalization group rooted at entity set `root` (the
/// root plus its direct specializations) against §5.2 condition (1).
/// Returns `None` when `root` has no specializations.
#[must_use]
pub fn classify_generalization(eer: &EerSchema, root: &str) -> Option<ClassifiedGroup> {
    let children = eer.children_of(root);
    if children.is_empty() {
        return None;
    }
    let mut violations = Vec::new();
    for child in &children {
        // (a) no own specializations, single direct parent.
        if !eer.children_of(child).is_empty() {
            violations.push(format!("(1a) `{child}` has specializations of its own"));
        }
        if eer.parents_of(child).len() > 1 {
            violations.push(format!("(1a) `{child}` has multiple direct parents"));
        }
        // (b) no relationship or weak-entity involvement.
        if !eer.relationships_of(child).is_empty() {
            violations.push(format!("(1b) `{child}` participates in relationship sets"));
        }
        if eer.owns_weak_entity(child) {
            violations.push(format!("(1b) `{child}` owns a weak entity set"));
        }
        // (c) exactly one own attribute.
        let own = eer.entity(child).map_or(0, |e| e.attrs.len());
        if own != 1 {
            violations.push(format!("(1c) `{child}` has {own} own attributes (need 1)"));
        }
    }
    Some(ClassifiedGroup {
        root: root.to_owned(),
        members: children.iter().map(|c| (*c).to_owned()).collect(),
        amenability: if violations.is_empty() {
            Amenability::NnaOnly
        } else {
            Amenability::GeneralNullConstraints
        },
        violations,
    })
}

/// Classifies the many-to-one relationship star rooted at object-set `root`
/// (the root plus every binary relationship set in which it participates
/// with *many* cardinality) against §5.2 condition (2). Returns `None`
/// when no such relationship set exists.
#[must_use]
pub fn classify_many_one_star(eer: &EerSchema, root: &str) -> Option<ClassifiedGroup> {
    let stars: Vec<_> = eer
        .relationships_of(root)
        .into_iter()
        .filter(|r| {
            r.participants.len() == 2
                && r.participants
                    .iter()
                    .any(|p| p.object == root && p.card == Card::Many)
                && r.participants
                    .iter()
                    .any(|p| p.object != root && p.card == Card::One)
        })
        .collect();
    if stars.is_empty() {
        return None;
    }
    let mut violations = Vec::new();
    for r in &stars {
        // (a) no attributes of their own.
        if !r.attrs.is_empty() {
            violations.push(format!("(2a) `{}` has attributes", r.name));
        }
        // (b) not involved in any other relationship set.
        if !eer.relationships_of(&r.name).is_empty() {
            violations.push(format!(
                "(2b) `{}` participates in another relationship set",
                r.name
            ));
        }
        // (c) one-side entity sets strong, single-attribute identifiers
        // (for specializations the identifier is inherited from the root of
        // the generalization hierarchy).
        for p in r.participants.iter().filter(|p| p.object != root) {
            match eer.entity(&p.object) {
                Some(e) => {
                    if e.weak_owner.is_some() {
                        violations.push(format!("(2c) `{}` is weak", p.object));
                    }
                    match effective_identifier_arity(eer, &p.object) {
                        Some(1) => {}
                        Some(n) => violations.push(format!(
                            "(2c) `{}` has a {n}-attribute identifier (need 1)",
                            p.object
                        )),
                        None => violations
                            .push(format!("(2c) `{}` has no resolvable identifier", p.object)),
                    }
                }
                None => violations.push(format!(
                    "(2c) `{}` is a relationship set, not an entity set",
                    p.object
                )),
            }
        }
    }
    Some(ClassifiedGroup {
        root: root.to_owned(),
        members: stars.iter().map(|r| r.name.clone()).collect(),
        amenability: if violations.is_empty() {
            Amenability::NnaOnly
        } else {
            Amenability::GeneralNullConstraints
        },
        violations,
    })
}

/// The arity of an entity set's *effective* identifier: its own identifier,
/// or — for a specialization — the identifier inherited from its (first)
/// generalization parent, followed transitively.
fn effective_identifier_arity(eer: &EerSchema, entity: &str) -> Option<usize> {
    let mut current = entity;
    for _ in 0..=eer.entities.len() {
        let e = eer.entity(current)?;
        if !e.identifier.is_empty() {
            return Some(e.identifier.len());
        }
        current = eer.parents_of(current).first().copied()?;
    }
    None
}

/// Classifies every candidate group in the schema: each generalization
/// hierarchy and each many-to-one relationship star.
#[must_use]
pub fn classify_all(eer: &EerSchema) -> Vec<ClassifiedGroup> {
    let mut out = Vec::new();
    for e in &eer.entities {
        if let Some(g) = classify_generalization(eer, &e.name) {
            out.push(g);
        }
        if let Some(g) = classify_many_one_star(eer, &e.name) {
            out.push(g);
        }
    }
    for r in &eer.relationships {
        if let Some(g) = classify_many_one_star(eer, &r.name) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::translate::translate;
    use relmerge_core::{prop52_nna_only, Merge};

    /// Cross-validation: the classifier's verdict must agree with what the
    /// actual translate → merge → remove pipeline produces.
    fn pipeline_nna_only(eer: &EerSchema, root: &str, members: &[String]) -> bool {
        let rs = translate(eer).unwrap();
        let mut set: Vec<&str> = vec![root];
        set.extend(members.iter().map(String::as_str));
        let mut merged = Merge::plan(&rs, &set, "MERGED_GROUP").unwrap();
        merged.remove_all_removable().unwrap();
        merged
            .generated_null_constraints()
            .iter()
            .all(|c| c.is_nna())
    }

    #[test]
    fn fig8_iii_nna_only() {
        let eer = figures::fig8_iii();
        let g = classify_generalization(&eer, "ACCOUNT").unwrap();
        assert_eq!(g.amenability, Amenability::NnaOnly, "{:?}", g.violations);
        assert!(pipeline_nna_only(&eer, "ACCOUNT", &g.members));
        // Proposition 5.2's syntactic conditions agree on the translation.
        let rs = translate(&eer).unwrap();
        assert!(prop52_nna_only(&rs, &["ACCOUNT", "CHECKING", "SAVINGS"])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fig8_iv_nna_only() {
        let eer = figures::fig8_iv();
        let g = classify_many_one_star(&eer, "COURSE").unwrap();
        assert_eq!(g.amenability, Amenability::NnaOnly, "{:?}", g.violations);
        assert_eq!(g.members, ["OFFER", "TEACH"]);
        assert!(pipeline_nna_only(&eer, "COURSE", &g.members));
    }

    #[test]
    fn fig8_i_needs_general_constraints() {
        let eer = figures::fig8_i();
        let g = classify_generalization(&eer, "VEHICLE").unwrap();
        assert_eq!(g.amenability, Amenability::GeneralNullConstraints);
        assert!(g.violations.iter().any(|v| v.contains("(1c)")));
        assert!(!pipeline_nna_only(&eer, "VEHICLE", &g.members));
    }

    #[test]
    fn fig8_ii_needs_general_constraints() {
        let eer = figures::fig8_ii();
        let g = classify_many_one_star(&eer, "PRODUCT").unwrap();
        assert_eq!(g.amenability, Amenability::GeneralNullConstraints);
        assert!(g.violations.iter().any(|v| v.contains("(2a)")));
        assert!(!pipeline_nna_only(&eer, "PRODUCT", &g.members));
    }

    #[test]
    fn fig7_course_star_fails_conditions() {
        // §5.2's closing example: COURSE with OFFER/TEACH/ASSIST does NOT
        // satisfy the conditions (TEACH and ASSIST hang off OFFER, which is
        // itself involved in relationship sets)…
        let eer = figures::fig7_eer();
        let g = classify_many_one_star(&eer, "COURSE").unwrap();
        assert_eq!(g.members, ["OFFER"]);
        assert_eq!(
            g.amenability,
            Amenability::GeneralNullConstraints,
            "{:?}",
            g.violations
        );
        assert!(g.violations.iter().any(|v| v.contains("(2b)")));
        // …while OFFER's own star {TEACH, ASSIST} satisfies them.
        let g2 = classify_many_one_star(&eer, "OFFER").unwrap();
        assert_eq!(g2.amenability, Amenability::NnaOnly, "{:?}", g2.violations);
        let mut members = g2.members.clone();
        members.sort();
        assert_eq!(members, ["ASSIST", "TEACH"]);
    }

    #[test]
    fn classify_all_covers_every_group() {
        let eer = figures::fig7_eer();
        let groups = classify_all(&eer);
        // PERSON generalization, COURSE star, OFFER star.
        assert_eq!(groups.len(), 3);
        let person = groups
            .iter()
            .find(|g| g.root == "PERSON")
            .expect("person group");
        // FACULTY and STUDENT have 0 own attributes and are involved in
        // relationship sets → general constraints.
        assert_eq!(person.amenability, Amenability::GeneralNullConstraints);
    }

    #[test]
    fn no_group_returns_none() {
        let eer = figures::fig8_iii();
        assert!(classify_generalization(&eer, "CHECKING").is_none());
        assert!(classify_many_one_star(&eer, "ACCOUNT").is_none());
    }
}
