//! An offline, std-only stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small subset of the `rand` 0.8 API it actually uses: [`Rng`] with
//! `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and the [`seq::SliceRandom`] slice helpers. The generator is SplitMix64 —
//! deterministic under a seed, statistically fine for workload generation,
//! and **not** cryptographically secure (neither was the use of `StdRng`
//! here). Streams differ from upstream `rand`, so seeded fixtures are stable
//! only within this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from OS entropy. The stub derives it from the
    /// system clock — good enough for non-reproducible workloads.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seed_from_u64(nanos)
    }
}

/// A type `gen_range` can sample uniformly. The single blanket impl of
/// [`SampleRange`] over this trait (mirroring upstream rand's shape) is what
/// lets integer literals in `gen_range(0..n)` infer their type from context.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;

    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// A type a `gen_range` call can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

fn next_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        lo + next_f64(rng) * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        // 54-bit draw scaled to close the interval at 1.0.
        let unit = (rng.next_u64() >> 10) as f64 * (1.0 / ((1u64 << 54) as f64 - 1.0));
        lo + unit.min(1.0) * (hi - lo)
    }
}

/// The user-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 in this stub.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// `amount >= len`).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// The convenience prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0i64..10);
            assert_eq!(x, b.gen_range(0i64..10));
            assert!((0..10).contains(&x));
        }
        let f = a.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&f));
        let v = a.gen_range(3usize..=3);
        assert_eq!(v, 3);
    }

    #[test]
    fn gen_bool_probability_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [1, 2, 3, 4, 5];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let picked: Vec<&i32> = items.choose_multiple(&mut rng, 3).collect();
        assert_eq!(picked.len(), 3);
        let mut sorted: Vec<i32> = picked.iter().map(|x| **x).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "distinct elements");
        let mut v: Vec<i32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut back = v.clone();
        back.sort_unstable();
        assert_eq!(back, orig);
    }
}
