//! An offline, std-only stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the proptest 1.x API its tests use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`/`prop_oneof!`,
//! [`Strategy`] with `prop_map`, `any::<T>()` for primitives, integer-range
//! strategies, and the `collection`, `option`, `array`, and `sample`
//! strategy modules.
//!
//! Differences from upstream, by design: **no shrinking** (a failing case
//! reports its seed and debug-printed inputs instead), no persistence of
//! regression files, and a SplitMix64 value source, so generated streams
//! differ from upstream. Each test function derives its seed from its own
//! name, keeping runs deterministic.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is false.
    Fail(String),
    /// `prop_assume!` rejection: the case is outside the property's domain.
    Reject,
}

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The value source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic generator for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no shrinking: `generate` produces the
/// final value directly.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 10) as f64 * (1.0 / ((1u64 << 54) as f64 - 1.0));
        lo + unit.min(1.0) * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A uniform choice among boxed alternative strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A collection size specification: an exact length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi_inclusive - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` of the inner strategy about three times in four, else `None`
    /// (upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// An array strategy of compile-time length.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of the given length with elements from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_fn!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5, uniform6 => 6);
}

/// Sampling strategies over concrete collections.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// One uniformly chosen element of `values` (cloned).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "sample::select needs a non-empty vec");
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len())].clone()
        }
    }

    /// An order-preserving random subsequence of `values` whose length is
    /// drawn from `size` (capped at `values.len()`).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        Subsequence { values, size }
    }

    /// See [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.values.len();
            let lo = self.size.start.min(max);
            let hi = self.size.end.min(max + 1).max(lo + 1);
            let n = (lo..hi).generate(rng);
            // Choose n distinct indices, then emit in original order.
            let mut indices: Vec<usize> = (0..max).collect();
            for i in (1..indices.len()).rev() {
                let j = rng.below(i + 1);
                indices.swap(i, j);
            }
            indices.truncate(n);
            indices.sort_unstable();
            indices
                .into_iter()
                .map(|i| self.values[i].clone())
                .collect()
        }
    }
}

/// Strategy namespace alias, mirroring `proptest::strategy`.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

/// Renders one generated argument for a failure message.
pub fn describe_arg(name: &str, value: &dyn fmt::Debug) -> String {
    format!("{name} = {value:?}")
}

/// The convenience prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Namespace alias used by `prop::collection::vec(...)`-style paths.
    pub mod prop {
        pub use crate::{array, collection, option, sample, strategy};
    }
}

/// Asserts a property holds, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts two values differ, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// A uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
///
/// The `#[test]` attribute written inside the macro (upstream proptest
/// style) is passed through verbatim; failing cases report the derived
/// seed, the case index, and the debug-printed arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Deterministic per-test seed derived from the function name.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                __seed = (__seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            let mut __rng = $crate::TestRng::new(__seed);
            let mut __rejected: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __described = {
                    let parts: Vec<String> =
                        vec![$($crate::describe_arg(stringify!($arg), &$arg)),+];
                    parts.join(", ")
                };
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __case += 1; }
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 10_000,
                            "proptest `{}`: too many prop_assume! rejections",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {} (seed {:#x}):\n{}\nargs: {}",
                            stringify!($name), __case, __seed, msg, __described
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0i64..10, y in 1usize..=4) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(crate::option::of(0i64..6), 0..8),
            pick in crate::sample::select(vec![1, 2, 3]),
            along in crate::sample::subsequence(vec![10, 20, 30, 40], 1..4),
            arr in crate::array::uniform4(0i64..4),
            flag in any::<bool>(),
            mapped in (0i64..5).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().flatten().all(|x| (0..6).contains(x)));
            prop_assert!([1, 2, 3].contains(&pick));
            prop_assert!(!along.is_empty() && along.len() < 4);
            prop_assert!(along.windows(2).all(|w| w[0] < w[1]), "order kept: {along:?}");
            prop_assert!(arr.iter().all(|x| (0..4).contains(x)));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_eq!(mapped % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(xs in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 64..65)) {
            prop_assert!(xs.iter().all(|x| *x == 1u8 || *x == 2u8));
            prop_assert!(xs.contains(&1u8) && xs.contains(&2u8), "both arms reachable");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
