//! An offline, std-only stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of criterion 0.5's API its benches use. Statistical rigor is
//! out of scope: each benchmark runs a short warm-up, then a fixed batch of
//! iterations, and prints the mean wall time per iteration. Good enough to
//! keep `cargo bench` compiling, running, and producing comparable
//! before/after numbers on one machine.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id naming a function and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over a fixed iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / u32::try_from(self.iters).unwrap_or(1));
    }

    /// Times `routine` with a fresh `setup` product per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / u32::try_from(self.iters).unwrap_or(1));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration batch size for this group's benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for compatibility; the stub has no target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            mean: None,
        };
        f(&mut b);
        match b.mean {
            Some(mean) => println!(
                "bench {}/{label}: {:>12} ns/iter ({} iters)",
                self.name,
                mean.as_nanos(),
                b.iters
            ),
            None => println!("bench {}/{label}: no measurement", self.name),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run(&id.label, f);
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let id = id.into();
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from_parameter("-"), f);
        group.finish();
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
