//! Fault-injection integration coverage: every batch injection site ×
//! arrival index × mode aborts with a typed error, leaves the deep
//! integrity checker clean, and rolls the state back byte-identical; a
//! panicking morsel worker fails only its own query; query budgets trip
//! with typed errors; and seeded corruption is actually detected.

use std::time::Duration;

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge::engine::fault::site;
use relmerge::engine::{
    Database, DbmsProfile, FaultMode, FaultPlan, IntegrityKind, QueryBudget, QueryPlan, Statement,
    Store,
};
use relmerge::relational::{
    Attribute, DatabaseState, Domain, Error, InclusionDep, NullConstraint, RelationScheme,
    RelationalSchema, Tuple, Value,
};

/// PARENT(P.K) ← CHILD(C.K, C.FK) with CHILD[C.FK] ⊆ PARENT[P.K].
fn parent_child_schema() -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new("PARENT", vec![Attribute::new("P.K", Domain::Int)], &["P.K"]).unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "CHILD",
            vec![
                Attribute::new("C.K", Domain::Int),
                Attribute::new("C.FK", Domain::Int),
            ],
            &["C.K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("PARENT", &["P.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("CHILD", &["C.K", "C.FK"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("CHILD", &["C.FK"], "PARENT", &["P.K"]))
        .unwrap();
    rs
}

fn row(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
}

/// A seeded baseline database: PARENT(1), PARENT(2), CHILD(500, 1).
fn baseline_db() -> Database {
    let mut db = Database::new(parent_child_schema(), DbmsProfile::ideal()).unwrap();
    db.insert("PARENT", row(&[1])).unwrap();
    db.insert("PARENT", row(&[2])).unwrap();
    db.insert("CHILD", row(&[500, 1])).unwrap();
    db
}

/// A valid mixed batch: inserts, a delete, and a child arriving before
/// its parent (legal under deferred validation).
fn torture_batch() -> Vec<Statement> {
    vec![
        Statement::insert("CHILD", row(&[501, 10])),
        Statement::insert("PARENT", row(&[10])),
        Statement::insert("PARENT", row(&[20])),
        Statement::insert("CHILD", row(&[502, 20])),
        Statement::delete("CHILD", row(&[500])),
        Statement::insert("CHILD", row(&[503, 10])),
    ]
}

#[test]
fn every_site_arrival_and_mode_recovers() {
    let batch = torture_batch();

    // Dry run with never-firing arms to learn each site's arrival count.
    let mut dry = baseline_db();
    let mut probe = FaultPlan::new();
    for &s in site::BATCH {
        probe = probe.fail_at(s, u64::MAX, FaultMode::Error);
    }
    let probe = dry.set_fault_plan(probe);
    dry.apply_batch(&batch).unwrap();

    for &s in site::BATCH {
        let hits = probe.hits(s);
        assert!(hits > 0, "site {s} never reached by the batch");
        for nth in 0..hits {
            for mode in [FaultMode::Error, FaultMode::Panic] {
                let mut db = baseline_db();
                let pre = db.snapshot().unwrap();
                let plan = db.set_fault_plan(FaultPlan::new().fail_at(s, nth, mode));
                let err = db
                    .apply_batch(&batch)
                    .expect_err("armed fault must abort the batch");
                assert_eq!(plan.fired(s), 1, "{s}#{nth} ({})", mode.label());
                // The abort is a typed error, never a process abort.
                match mode {
                    FaultMode::Error => assert!(
                        matches!(
                            err.root_cause(),
                            relmerge::engine::DmlError::Schema(Error::Injected { .. })
                        ),
                        "{s}#{nth}: {err}"
                    ),
                    FaultMode::Panic => assert!(
                        matches!(
                            err.root_cause(),
                            relmerge::engine::DmlError::Schema(Error::ExecutionPanic { .. })
                        ),
                        "{s}#{nth}: {err}"
                    ),
                }
                db.clear_fault_plan();
                let report = db.verify_integrity();
                assert!(report.is_clean(), "{s}#{nth} ({}): {report}", mode.label());
                assert_eq!(
                    db.snapshot().unwrap(),
                    pre,
                    "{s}#{nth} ({}): rollback must be byte-identical",
                    mode.label()
                );
                // The database stays fully usable after the abort.
                db.apply_batch(&batch).unwrap();
            }
        }
    }
}

#[test]
fn session_sites_error_and_panic_at_every_arrival_recover() {
    let batch = torture_batch();

    // Dry run through a store to learn each session site's arrival count
    // (one pin, one writer commit).
    let st = Store::new(baseline_db());
    let mut probe = FaultPlan::new();
    for &s in site::SESSION {
        probe = probe.fail_at(s, u64::MAX, FaultMode::Error);
    }
    let probe = st.set_fault_plan(probe);
    let dry = st.session();
    let _ = dry.pin().unwrap();
    dry.apply_batch(&batch).unwrap();

    for &s in site::SESSION {
        let hits = probe.hits(s);
        assert!(hits > 0, "site {s} never reached");
        for nth in 0..hits {
            for mode in [FaultMode::Error, FaultMode::Panic] {
                let st = Store::new(baseline_db());
                let session = st.session();
                let pre = st.snapshot().unwrap();
                // Pinned before the fault arms: the reader a failed
                // writer commit must not poison.
                let pinned = session.pin().unwrap();
                let plan = st.set_fault_plan(FaultPlan::new().fail_at(s, nth, mode));
                match s {
                    site::SESSION_SNAPSHOT => {
                        let err = session.pin().expect_err("armed pin must fail");
                        match mode {
                            FaultMode::Error => {
                                assert!(matches!(err, Error::Injected { .. }), "{err}")
                            }
                            FaultMode::Panic => {
                                assert!(matches!(err, Error::ExecutionPanic { .. }), "{err}")
                            }
                        }
                    }
                    _ => {
                        let err = session
                            .apply_batch(&batch)
                            .expect_err("armed writer commit must fail");
                        match mode {
                            FaultMode::Error => assert!(
                                matches!(
                                    err.root_cause(),
                                    relmerge::engine::DmlError::Schema(Error::Injected { .. })
                                ),
                                "{err}"
                            ),
                            FaultMode::Panic => assert!(
                                matches!(
                                    err.root_cause(),
                                    relmerge::engine::DmlError::Schema(
                                        Error::ExecutionPanic { .. }
                                    )
                                ),
                                "{err}"
                            ),
                        }
                    }
                }
                assert_eq!(plan.fired(s), 1, "{s}#{nth} ({})", mode.label());
                st.clear_fault_plan();
                assert!(st.verify_integrity().is_clean());
                assert_eq!(
                    st.snapshot().unwrap(),
                    pre,
                    "{s}#{nth} ({}): master must be untouched",
                    mode.label()
                );
                // A failed writer commit (or pin) never poisons a
                // concurrently-pinned reader: the frozen view still
                // answers, byte-identical to the pre-fault state.
                assert_eq!(
                    pinned.snapshot().unwrap(),
                    pre,
                    "{s}#{nth} ({}): pinned reader poisoned",
                    mode.label()
                );
                assert!(pinned.verify_integrity().is_clean());
                // The store stays fully serviceable.
                let _ = session.pin().unwrap();
                session.apply_batch(&batch).unwrap();
            }
        }
    }
}

#[test]
fn panicking_morsel_worker_fails_only_its_query() {
    let mut db = baseline_db();
    for k in 100..164 {
        db.insert("PARENT", row(&[k])).unwrap();
    }
    db.configure(db.config().morsel_rows(4));
    db.configure(db.config().parallelism(4));
    let scan = QueryPlan::scan("PARENT");
    let (all, _) = db.execute(&scan).unwrap();

    let plan =
        db.set_fault_plan(FaultPlan::new().fail_at(site::MORSEL_WORKER, 2, FaultMode::Panic));
    let err = db.execute(&scan).unwrap_err();
    assert!(matches!(err, Error::ExecutionPanic { .. }), "{err}");
    assert_eq!(plan.fired(site::MORSEL_WORKER), 1);

    // Only that query failed: the database survives, verifies clean, and
    // answers the same query once the plan is cleared.
    db.clear_fault_plan();
    assert!(db.verify_integrity().is_clean());
    let (again, _) = db.execute(&scan).unwrap();
    assert_eq!(again, all);
    db.insert("PARENT", row(&[999])).unwrap();

    // Error mode on the serial path is equally contained.
    db.configure(db.config().parallelism(1));
    db.set_fault_plan(FaultPlan::new().fail_at(site::MORSEL_WORKER, 0, FaultMode::Error));
    let err = db.execute(&scan).unwrap_err();
    assert!(matches!(err, Error::Injected { .. }), "{err}");
    db.clear_fault_plan();
    assert!(db.execute(&scan).is_ok());
}

#[test]
fn query_budgets_trip_with_typed_errors() {
    let mut db = baseline_db();
    for k in 100..200 {
        db.insert("PARENT", row(&[k])).unwrap();
    }
    let scan = QueryPlan::scan("PARENT");

    db.configure(
        db.config()
            .query_budget(QueryBudget::unlimited().with_max_rows(10)),
    );
    let err = db.execute(&scan).unwrap_err();
    assert!(
        matches!(err, Error::BudgetExceeded { ref detail } if detail.contains("row cap")),
        "{err}"
    );

    db.configure(
        db.config()
            .query_budget(QueryBudget::unlimited().with_max_wall(Duration::ZERO)),
    );
    let err = db.execute(&scan).unwrap_err();
    assert!(matches!(err, Error::BudgetExceeded { .. }), "{err}");

    // Lifting the budget restores service; parallel execution under a
    // generous budget is unaffected.
    db.configure(db.config().query_budget(QueryBudget::unlimited()));
    assert!(db.execute(&scan).is_ok());
    db.configure(db.config().parallelism(4));
    db.configure(
        db.config()
            .query_budget(QueryBudget::unlimited().with_max_rows(1_000_000)),
    );
    assert!(db.execute(&scan).is_ok());
}

#[test]
fn verify_integrity_detects_seeded_corruption() {
    // A dangling foreign key and a null in a NOT-NULL column bypass the
    // DML layer entirely. `load_state` audits its input with the deep
    // checker and rejects the state typed; the database that refused the
    // load must be discarded, but still exposes the violations through
    // `verify_integrity` for diagnosis.
    let schema = parent_child_schema();
    let mut state = DatabaseState::empty_for(&schema).unwrap();
    state.insert("PARENT", Tuple::new([Value::Int(1)])).unwrap();
    state
        .insert("CHILD", Tuple::new([Value::Int(5), Value::Int(99)]))
        .unwrap();
    state
        .insert("CHILD", Tuple::new([Value::Int(6), Value::Null]))
        .unwrap();
    let mut db = Database::new(schema, DbmsProfile::ideal()).unwrap();
    let err = db.load_state(&state).unwrap_err();
    assert!(
        matches!(err, relmerge::relational::Error::StateMismatch { .. }),
        "{err}"
    );

    let report = db.verify_integrity();
    assert!(!report.is_clean());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == IntegrityKind::InclusionDependency),
        "{report}"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == IntegrityKind::NullConstraint),
        "{report}"
    );
    // A healthy database reports clean with non-trivial coverage counts.
    let clean = baseline_db().verify_integrity();
    assert!(clean.is_clean());
    assert!(clean.relations_checked >= 2);
    assert!(clean.constraints_checked > 0);
    assert!(clean.index_entries_checked > 0);

    // The unverified variant accepts the same corrupt state without the
    // audit — the caller owns the verification boundary (crash recovery
    // uses it and deep-checks once after the whole replay).
    let mut unchecked = Database::new(parent_child_schema(), DbmsProfile::ideal()).unwrap();
    unchecked.load_state_unverified(&state).unwrap();
    assert!(!unchecked.verify_integrity().is_clean());
}

/// One random statement against the parent/child schema.
fn random_batch(rng: &mut StdRng, n: usize) -> Vec<Statement> {
    let mut next_parent = 100i64;
    let mut next_child = 1000i64;
    let mut stmts = Vec::new();
    for _ in 0..n {
        match rng.gen_range(0..4u32) {
            0 => {
                stmts.push(Statement::insert("PARENT", row(&[next_parent])));
                next_parent += 1;
            }
            1 => {
                // Mostly valid references (parents 1/2 or ones inserted in
                // this batch), occasionally dangling — natural violations
                // must roll back exactly like injected ones.
                let fk = if rng.gen_bool(0.85) {
                    if next_parent > 100 && rng.gen_bool(0.5) {
                        rng.gen_range(100..next_parent)
                    } else {
                        rng.gen_range(1..3)
                    }
                } else {
                    9_999
                };
                stmts.push(Statement::insert("CHILD", row(&[next_child, fk])));
                next_child += 1;
            }
            2 => stmts.push(Statement::delete(
                "CHILD",
                row(&[rng.gen_range(999..next_child)]),
            )),
            _ => stmts.push(Statement::delete(
                "PARENT",
                row(&[rng.gen_range(99..next_parent)]),
            )),
        }
    }
    stmts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random batches under random seeded single-arm fault plans: if the
    /// arm fires the batch aborts, and after any abort — injected, panic,
    /// or natural violation — the deep checker is clean and the state
    /// equals the pre-batch snapshot.
    #[test]
    fn seeded_faults_always_leave_a_clean_database(
        seed in 0u64..1_000_000,
        n in 4usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = random_batch(&mut rng, n);
        let mut db = baseline_db();
        let pre = db.snapshot().unwrap();
        let plan = db.set_fault_plan(FaultPlan::seeded(
            seed,
            site::BATCH,
            (n as u64) * 2,
        ));
        let outcome = db.apply_batch(&batch);
        let fired = plan.total_fired();
        db.clear_fault_plan();
        if fired > 0 {
            prop_assert!(outcome.is_err(), "a fired fault must abort the batch");
        }
        let report = db.verify_integrity();
        prop_assert!(report.is_clean(), "{}", report);
        if outcome.is_err() {
            prop_assert_eq!(db.snapshot().unwrap(), pre);
        }
        // The database remains serviceable either way.
        db.insert("PARENT", row(&[777_777])).unwrap();
    }
}
