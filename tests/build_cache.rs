//! Whole-system property test for the versioned build-side cache: under a
//! random interleaving of DML, worker-count changes, cache clears, and
//! queries, a cache-enabled database must return the byte-identical
//! relation and identical `QueryStats` as a cache-disabled twin at every
//! step, and relation versions must bump on exactly the mutations that
//! change the relation — the invariant that makes a cache hit safe.

use proptest::prelude::*;

use relmerge::engine::{Database, DbmsProfile, JoinStep, QueryPlan};
use relmerge::relational::{Attribute, Domain, RelationScheme, RelationalSchema, Tuple, Value};

fn attr(name: &str) -> Attribute {
    Attribute::new(name, Domain::Int)
}

/// L(L.K, L.V) and R(R.K, R.V), keys `[L.K]` / `[R.K]`, no referential
/// constraints: every DML statement is schedulable, and a join on the V
/// columns has no covering index, so it always takes the transient-build
/// path the cache serves.
fn schema() -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("L", vec![attr("L.K"), attr("L.V")], &["L.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("R", vec![attr("R.K"), attr("R.V")], &["R.K"]).unwrap())
        .unwrap();
    rs
}

fn build_db(cache: bool) -> Database {
    let mut db = Database::new(schema(), DbmsProfile::ideal()).unwrap();
    // Always hash-join, so every query exercises a build side.
    db.configure(db.config().hash_join_threshold(0));
    if !cache {
        db.configure(db.config().build_cache_capacity(0));
    }
    db
}

fn tup(k: i64, v: i64) -> Tuple {
    Tuple::new([Value::Int(k), Value::Int(v)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_execution_is_indistinguishable_from_uncached(
        // (op, k, v) triples: 0/1 insert L/R, 2/3 delete L/R, 4 worker
        // change, 5 cache clear. Small key/value ranges force duplicate
        // keys (rejected inserts) and genuine join matches.
        ops in prop::collection::vec((0u8..6, 0i64..24, 0i64..6), 1..40),
    ) {
        let plan = QueryPlan::scan("L").join(JoinStep::inner("R", &["L.V"], &["R.V"]));
        let mut cached = build_db(true);
        let mut plain = build_db(false);

        for (op, k, v) in ops {
            let rel = if op % 2 == 0 { "L" } else { "R" };
            match op {
                0 | 1 => {
                    let before = cached.relation_version(rel).unwrap();
                    let a = cached.insert(rel, tup(k, v));
                    let b = plain.insert(rel, tup(k, v));
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    let did = matches!(a, Ok(true));
                    prop_assert_eq!(matches!(b, Ok(true)), did);
                    // The version bumps exactly when the relation changed.
                    let after = cached.relation_version(rel).unwrap();
                    prop_assert_eq!(after > before, did, "insert {} {}", rel, k);
                }
                2 | 3 => {
                    let before = cached.relation_version(rel).unwrap();
                    let key = Tuple::new([Value::Int(k)]);
                    let a = cached.delete_by_key(rel, &key).unwrap();
                    let b = plain.delete_by_key(rel, &key).unwrap();
                    prop_assert_eq!(a, b);
                    let after = cached.relation_version(rel).unwrap();
                    prop_assert_eq!(after > before, a, "delete {} {}", rel, k);
                }
                4 => {
                    let workers = (k % 4 + 1) as usize;
                    cached.configure(cached.config().parallelism(workers));
                    plain.configure(plain.config().parallelism(workers));
                }
                _ => cached.clear_build_cache(),
            }

            // Twice on the cached side: the first execution may miss
            // (fresh build) or hit, the second is warm whenever the first
            // populated — all three must be byte-identical with equal
            // stats.
            let (r1, s1) = cached.execute(&plan).unwrap();
            let (r2, s2) = cached.execute(&plan).unwrap();
            let (rp, sp) = plain.execute(&plan).unwrap();
            prop_assert_eq!(&r1, &rp, "cached cold vs uncached");
            prop_assert_eq!(&s1, &sp, "cached cold stats vs uncached");
            prop_assert_eq!(&r2, &rp, "cached warm vs uncached");
            prop_assert_eq!(&s2, &sp, "cached warm stats vs uncached");
        }
    }
}
