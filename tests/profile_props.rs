//! Whole-system property tests for the workload profiler: on random star
//! schemas carrying random consistent states, the per-fingerprint
//! aggregated totals must equal the sum of the individual
//! [`QueryStats`] of the executions they fold — exactly, at every worker
//! count — and the plan fingerprint must be stable under predicate-order
//! permutation and re-parenthesization.
//!
//! [`QueryStats`]: relmerge::engine::QueryStats

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::engine::{Database, DbmsProfile, JoinStep, Predicate, QueryPlan, QueryStats};
use relmerge::obs::{ProfileSnapshot, QueryCost};
use relmerge::relational::{DatabaseState, RelationalSchema, Tuple, Value};
use relmerge::workload::{consistent_state, star_schema, StarSpec, StateSpec};

/// The stat fields a profiler total must reproduce exactly (wall time is
/// measured, not derived, so it is excluded from the comparison).
#[derive(Debug, Default, PartialEq, Eq)]
struct StatSum {
    rows_scanned: u64,
    index_probes: u64,
    hash_builds: u64,
    rows_out: u64,
    morsels: u64,
    intermediate_bytes: u64,
    peak_intermediate_bytes: u64,
}

impl StatSum {
    fn fold(&mut self, s: &QueryStats) {
        self.rows_scanned += s.rows_scanned;
        self.index_probes += s.index_probes;
        self.hash_builds += s.hash_builds;
        self.rows_out += s.rows_output;
        self.morsels += s.morsels;
        self.intermediate_bytes += s.intermediate_bytes;
        self.peak_intermediate_bytes = self.peak_intermediate_bytes.max(s.peak_intermediate_bytes);
    }

    fn of_cost(t: &QueryCost) -> StatSum {
        StatSum {
            rows_scanned: t.rows_scanned,
            index_probes: t.index_probes,
            hash_builds: t.hash_builds,
            rows_out: t.rows_out,
            morsels: t.morsels,
            intermediate_bytes: t.intermediate_bytes,
            peak_intermediate_bytes: t.peak_intermediate_bytes,
        }
    }
}

/// A mixed bag of plans over the star: scans with join subsets, point
/// lookups with varying key constants (same shape, different literals),
/// and a filtered scan.
fn plan_mix(satellites: usize, keys: &[i64]) -> Vec<QueryPlan> {
    let mut plans = Vec::new();
    plans.push(QueryPlan::scan("ROOT"));
    for s in 0..satellites {
        let rel = format!("S{s}");
        let key = format!("{rel}.K");
        plans.push(QueryPlan::scan("ROOT").join(JoinStep::outer(
            &rel,
            &["ROOT.K"],
            &[key.as_str()],
        )));
    }
    for &k in keys {
        let mut plan = QueryPlan::lookup("ROOT", &["ROOT.K"], Tuple::new([Value::Int(k)]));
        for s in 0..satellites {
            let rel = format!("S{s}");
            let key = format!("{rel}.K");
            plan = plan.join(JoinStep::inner(&rel, &["ROOT.K"], &[key.as_str()]));
        }
        plans.push(plan);
    }
    plans.push(
        QueryPlan::scan("ROOT")
            .filter(Predicate::not_null("ROOT.K").and(Predicate::eq("ROOT.K", Value::Int(0)))),
    );
    plans
}

/// Maps a plan to its fingerprint by executing it alone on a fresh
/// database over the same schema and state — the snapshot then holds
/// exactly one entry, whose key is the plan's fingerprint.
fn fingerprint_of(schema: &RelationalSchema, state: &DatabaseState, plan: &QueryPlan) -> u64 {
    let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).expect("fresh db");
    db.load_state(state).expect("load");
    db.execute(plan).expect("probe execution");
    let snap = db.profile_snapshot();
    assert_eq!(snap.queries.len(), 1, "one plan, one fingerprint");
    *snap.queries.keys().next().expect("entry")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-fingerprint totals == the summed `QueryStats` of exactly the
    /// executions that share the fingerprint, at every worker count; and
    /// the profile's stat fields are identical across worker counts.
    #[test]
    fn profiler_totals_equal_per_query_sums_at_every_worker_count(
        satellites in 1usize..4,
        rows in 1usize..24,
        coverage in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites, ..StarSpec::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = star_schema(&spec);
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage },
            &mut rng,
        ).expect("state");

        let keys = [0i64, 1, (rows / 2) as i64];
        let plans = plan_mix(satellites, &keys);
        let fingerprints: Vec<u64> = plans
            .iter()
            .map(|p| fingerprint_of(&schema, &state, p))
            .collect();

        let mut baseline: Option<BTreeMap<u64, StatSum>> = None;
        for workers in [1usize, 2, 4] {
            let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).expect("db");
            db.load_state(&state).expect("load");
            db.configure(db.config().parallelism(workers));

            // Execute the mix (twice, so folding is exercised) and sum
            // stats manually per expected fingerprint.
            let mut manual: BTreeMap<u64, StatSum> = BTreeMap::new();
            let mut executions: BTreeMap<u64, u64> = BTreeMap::new();
            for _ in 0..2 {
                for (plan, &fp) in plans.iter().zip(&fingerprints) {
                    let (_, stats) = db.execute(plan).expect("execution");
                    manual.entry(fp).or_default().fold(&stats);
                    *executions.entry(fp).or_default() += 1;
                }
            }

            let snap: ProfileSnapshot = db.profile_snapshot();
            let got: BTreeMap<u64, StatSum> = snap
                .queries
                .iter()
                .map(|(&fp, p)| (fp, StatSum::of_cost(&p.totals)))
                .collect();
            prop_assert_eq!(
                &got, &manual,
                "per-fingerprint totals must equal per-query sums (workers={})",
                workers
            );
            for (fp, p) in &snap.queries {
                prop_assert_eq!(p.executions, executions[fp]);
            }
            // Stat fields are worker-count independent: the same mix
            // yields the same profile wherever it ran.
            match &baseline {
                None => baseline = Some(got),
                Some(b) => prop_assert_eq!(b, &got, "profile varies with workers"),
            }
        }
    }

    /// The fingerprint hashes predicate *structure*, not literals or the
    /// order of commutative connectives: any permutation or
    /// re-parenthesization of an AND/OR chain, and any change of compared
    /// constants, maps to the same fingerprint — while changing the
    /// connective or the attribute set does not.
    #[test]
    fn fingerprints_stable_under_predicate_permutation(
        rows in 1usize..16,
        a in any::<i64>(),
        b in any::<i64>(),
        use_or in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites: 1, ..StarSpec::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = star_schema(&spec);
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage: 0.5 },
            &mut rng,
        ).expect("state");

        let connect = |l: Predicate, r: Predicate| if use_or { l.or(r) } else { l.and(r) };
        // Three leaves over the attributes visible after ROOT ⋈ S0.
        let leaves = || {
            (
                Predicate::eq("ROOT.K", Value::Int(a)),
                Predicate::not_null("S0.K"),
                Predicate::eq("S0.V0", Value::Int(b)),
            )
        };
        // (p1 ∘ (p2 ∘ p3)), ((p3 ∘ p1) ∘ p2), ((p2 ∘ p3) ∘ p1): same
        // flattened chain, different order and shape — and the first
        // variant repeated with different literals.
        let (p1, p2, p3) = leaves();
        let v1 = connect(p1, connect(p2, p3));
        let (p1, p2, p3) = leaves();
        let v2 = connect(connect(p3, p1), p2);
        let (p1, p2, p3) = leaves();
        let v3 = connect(connect(p2, p3), p1);
        let lit = connect(
            Predicate::eq("ROOT.K", Value::Int(a.wrapping_add(1))),
            connect(
                Predicate::not_null("S0.K"),
                Predicate::eq("S0.V0", Value::Int(b.wrapping_sub(7))),
            ),
        );

        let fp_of = |pred: Predicate| {
            let plan = QueryPlan::scan("ROOT")
                .join(JoinStep::outer("S0", &["ROOT.K"], &["S0.K"]))
                .filter(pred);
            fingerprint_of(&schema, &state, &plan)
        };
        let f1 = fp_of(v1);
        prop_assert_eq!(f1, fp_of(v2), "permutation changed the fingerprint");
        prop_assert_eq!(f1, fp_of(v3), "re-parenthesization changed it");
        prop_assert_eq!(f1, fp_of(lit), "literals leaked into the fingerprint");

        // Negative controls: flipping the connective or narrowing the
        // attribute set is a different shape.
        let (p1, p2, p3) = leaves();
        let flipped = if use_or { p1.and(p2.and(p3)) } else { p1.or(p2.or(p3)) };
        // Flipping the connective must distinguish the shape.
        prop_assert_ne!(f1, fp_of(flipped));
        let (p1, p2, _) = leaves();
        // Dropping a leaf (shorter chain) must distinguish too.
        prop_assert_ne!(f1, fp_of(connect(p1, p2)));
    }
}
