//! Fidelity checks: the library's optimized implementations agree with the
//! paper's literal algebraic definitions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::Merge;
use relmerge::relational::algebra::{
    equi_join, outer_equi_join, project, rename, total_project, union,
};
use relmerge::relational::{Attribute, Domain, Relation, Tuple, Value};
use relmerge::workload::{consistent_state, star_merge_set, star_schema, StarSpec, StateSpec};

/// η implemented by `Merged::apply` equals the literal fold of
/// outer-equi-joins written out with the algebra operators.
#[test]
fn eta_matches_literal_algebra() {
    let spec = StarSpec {
        satellites: 2,
        non_key_attrs: 2,
        externals: 0,
    };
    let schema = star_schema(&spec);
    let set = star_merge_set(&spec);
    let refs: Vec<&str> = set.iter().map(String::as_str).collect();
    let merged = Merge::plan(&schema, &refs, "MERGED").unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    let state = consistent_state(&schema, &StateSpec::default(), &mut rng).unwrap();

    // Literal Definition 4.1 state mapping: rm := r_k; then fold
    // rm := rm ⟗_{Km=Ki} r_i.
    let rk = state.relation("ROOT").unwrap();
    let mut rm = rk.clone();
    for sat in ["S0", "S1"] {
        let ri = state.relation(sat).unwrap();
        let ki = format!("{sat}.K");
        rm = outer_equi_join(&rm, ri, &[("ROOT.K", &ki)]).unwrap();
    }
    let via_apply = merged.apply(&state).unwrap();
    assert!(via_apply.relation("MERGED").unwrap().set_eq_unordered(&rm));
}

/// η′ implemented by `Merged::invert` equals the literal total projections
/// `r_i := π↓_{Xi}(r_m)` (Definition 4.1) when nothing has been removed.
#[test]
fn eta_prime_matches_total_projections() {
    let spec = StarSpec {
        satellites: 3,
        non_key_attrs: 1,
        externals: 0,
    };
    let schema = star_schema(&spec);
    let set = star_merge_set(&spec);
    let refs: Vec<&str> = set.iter().map(String::as_str).collect();
    let merged = Merge::plan(&schema, &refs, "MERGED").unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let state = consistent_state(&schema, &StateSpec::default(), &mut rng).unwrap();
    let merged_state = merged.apply(&state).unwrap();
    let rm = merged_state.relation("MERGED").unwrap();
    let back = merged.invert(&merged_state).unwrap();
    for name in &refs {
        let scheme = schema.scheme_required(name).unwrap();
        let xi: Vec<&str> = scheme.attr_names();
        let literal = total_project(rm, &xi).unwrap();
        assert!(back.relation(name).unwrap().set_eq(&literal), "{name}");
    }
}

/// μ′ after a removal equals the paper's algebraic reconstruction:
/// `r′m := r″m ⟗_{Km=Yi} rename(π_{Km}(π↓_{Km ∪ (Xi−Yi)}(r″m)), Km ← Yi)`
/// (Definition 4.3).
#[test]
fn mu_prime_matches_algebraic_formula() {
    let spec = StarSpec {
        satellites: 2,
        non_key_attrs: 2,
        externals: 0,
    };
    let schema = star_schema(&spec);
    let set = star_merge_set(&spec);
    let refs: Vec<&str> = set.iter().map(String::as_str).collect();
    let wide = Merge::plan(&schema, &refs, "MERGED").unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    let state = consistent_state(&schema, &StateSpec::default(), &mut rng).unwrap();
    let wide_rel = wide.apply(&state).unwrap();
    let wide_rm = wide_rel.relation("MERGED").unwrap();

    // Remove S0's key.
    let mut narrow = wide.clone();
    narrow.remove("S0").unwrap();
    let narrow_rel = narrow.apply(&state).unwrap();
    let narrow_rm = narrow_rel.relation("MERGED").unwrap();

    // The paper's μ′ formula, spelled out with the algebra operators.
    let km = ["ROOT.K"];
    let survivors = ["ROOT.K", "S0.V0", "S0.V1"]; // Km ∪ (Xi − Yi)
    let present = total_project(narrow_rm, &survivors).unwrap();
    let key_values = project(&present, &km).unwrap();
    let yi_attr = Attribute::new("S0.K", Domain::Int);
    let renamed = rename(&key_values, &km, &[yi_attr]).unwrap();
    let rebuilt = outer_equi_join(narrow_rm, &renamed, &[("ROOT.K", "S0.K")]).unwrap();
    assert!(wide_rm.set_eq_unordered(&rebuilt));
}

fn small_relation(prefix: &str) -> impl Strategy<Value = Relation> {
    let prefix = prefix.to_owned();
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::of(0i64..6), 2),
        0..12,
    )
    .prop_map(move |rows| {
        let header = vec![
            Attribute::new(format!("{prefix}.A"), Domain::Int),
            Attribute::new(format!("{prefix}.B"), Domain::Int),
        ];
        Relation::with_rows(
            header,
            rows.into_iter().map(|r| {
                Tuple::new(
                    r.into_iter()
                        .map(|v| v.map_or(Value::Null, Value::Int))
                        .collect::<Vec<_>>(),
                )
            }),
        )
        .expect("valid rows")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The outer-equi-join is the union of its three defining parts
    /// (paper §2): the equi-join, the left-padded unmatched right tuples,
    /// and the right-padded unmatched left tuples — and both operands are
    /// recoverable from it by projection.
    #[test]
    fn outer_join_three_parts(l in small_relation("L"), r in small_relation("R")) {
        let on = [("L.A", "R.A")];
        let oj = outer_equi_join(&l, &r, &on).expect("outer join");
        let inner = equi_join(&l, &r, &on).expect("inner join");
        // Part r1 ⊆ outer join.
        for t in inner.iter() {
            prop_assert!(oj.contains(t));
        }
        // Every left tuple appears (matched or padded).
        let left_cols = ["L.A", "L.B"];
        let left_back = project(&oj, &left_cols).expect("project");
        for t in l.iter() {
            prop_assert!(left_back.contains(t));
        }
        // Every right tuple appears.
        let right_cols = ["R.A", "R.B"];
        let right_back = project(&oj, &right_cols).expect("project");
        for t in r.iter() {
            prop_assert!(right_back.contains(t));
        }
        // No invented rows: every outer tuple is either inner, or one side
        // all-null with the other a real operand tuple.
        for t in oj.iter() {
            let lt = t.project(&[0, 1]);
            let rt = t.project(&[2, 3]);
            let legit = inner.contains(t)
                || (lt.values().iter().all(Value::is_null) && r.contains(&rt))
                || (rt.values().iter().all(Value::is_null) && l.contains(&lt));
            prop_assert!(legit, "invented tuple {t}");
        }
    }

    /// Total projection distributes over union (both are set operations on
    /// total subtuples) — a §2 algebra identity the reconstruction
    /// arguments rely on.
    #[test]
    fn total_projection_distributes_over_union(
        a in small_relation("X"),
        b in small_relation("X"),
    ) {
        let u = union(&a, &b).expect("union");
        let cols = ["X.A"];
        let lhs = total_project(&u, &cols).expect("project");
        let rhs = union(
            &total_project(&a, &cols).expect("project"),
            &total_project(&b, &cols).expect("project"),
        ).expect("union");
        prop_assert!(lhs.set_eq(&rhs));
    }

    /// Rename is invertible and value-preserving.
    #[test]
    fn rename_round_trip(a in small_relation("X")) {
        let fresh = [Attribute::new("Y.A", Domain::Int), Attribute::new("Y.B", Domain::Int)];
        let orig = [
            Attribute::new("X.A", Domain::Int),
            Attribute::new("X.B", Domain::Int),
        ];
        let there = rename(&a, &["X.A", "X.B"], &fresh).expect("rename");
        let back = rename(&there, &["Y.A", "Y.B"], &orig).expect("rename");
        prop_assert!(a.set_eq(&back));
    }
}
