//! Crash-recovery property tests for the write-ahead log.
//!
//! The contract under test is *valid-prefix semantics*: whatever byte the
//! log is cut at — a clean record boundary, mid-record (torn tail), or a
//! record whose checksum was corrupted in place — recovery must produce a
//! `verify_integrity()`-clean database equal to the state after the last
//! batch whose record survives intact, at every worker count.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relmerge::engine::{
    Database, DbmsProfile, DurabilityConfig, EngineConfig, FsyncPolicy, Statement,
};
use relmerge::relational::{
    Attribute, DatabaseState, Domain, InclusionDep, NullConstraint, RelationScheme,
    RelationalSchema, Tuple, Value,
};

/// Bytes of the `RMWAL001` magic every log file starts with.
const WAL_HEADER: u64 = 8;

fn attr(name: &str) -> Attribute {
    Attribute::new(name, Domain::Int)
}

/// PARENT(P.K) ← CHILD(C.K, C.FK): keyed inserts, RESTRICT deletes, and
/// FK-changing updates all reachable from small random draws.
fn schema() -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("PARENT", vec![attr("P.K")], &["P.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("CHILD", vec![attr("C.K"), attr("C.FK")], &["C.K"]).unwrap())
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("PARENT", &["P.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("CHILD", &["C.K", "C.FK"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("CHILD", &["C.FK"], "PARENT", &["P.K"]))
        .unwrap();
    rs
}

fn tup(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
}

/// One random statement over small key ranges, so inserts collide with
/// existing rows, deletes hit RESTRICT, and updates rewire real children —
/// rejected batches (state unchanged, nothing logged) are part of the mix.
fn random_stmt(rng: &mut StdRng) -> Statement {
    let parent = rng.gen_range(0..8i64);
    let child = rng.gen_range(0..12i64);
    match rng.gen_range(0..5u8) {
        0 => Statement::insert("PARENT", tup(&[parent])),
        1 => Statement::insert("CHILD", tup(&[child, parent])),
        2 => Statement::delete("CHILD", tup(&[child])),
        3 => Statement::delete("PARENT", tup(&[parent])),
        _ => Statement::update("CHILD", tup(&[child]), tup(&[child, parent])),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "relmerge-walprop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, workers: usize, snapshot_every: u64) -> EngineConfig {
    EngineConfig::default()
        .parallelism(workers)
        .durability(Some(
            DurabilityConfig::new(dir)
                .snapshot_every(snapshot_every)
                // No OS crash is simulated (the process survives), so skipping
                // fsync changes nothing about what recovery can see.
                .fsync(FsyncPolicy::Never),
        ))
}

/// Runs `batches` random batches against a fresh durable database and
/// returns, for the log's **final generation**, every durably-acked
/// `(offset, state)` prefix point — index 0 is the generation's baseline
/// (the snapshot state). Earlier generations are irrelevant to recovery:
/// their snapshot and log files have been superseded.
fn run_workload(db: &mut Database, rng: &mut StdRng, batches: usize) -> Vec<(u64, DatabaseState)> {
    let (g0, off0) = db.wal_position().expect("durable db");
    assert_eq!(off0, WAL_HEADER);
    let mut generation = g0;
    let mut prefixes = vec![(off0, db.snapshot().unwrap())];
    for _ in 0..batches {
        let n = rng.gen_range(1..4usize);
        let stmts: Vec<Statement> = (0..n).map(|_| random_stmt(rng)).collect();
        if db.apply_batch(&stmts).is_err() {
            continue; // rejected: rolled back, nothing appended
        }
        let (gen, off) = db.wal_position().expect("durable db");
        if gen != generation {
            // A snapshot fired: this batch's post-state IS the new
            // generation's baseline, and the old log is gone.
            generation = gen;
            prefixes.clear();
        }
        prefixes.push((off, db.snapshot().unwrap()));
    }
    prefixes
}

/// The state recovery must reproduce when the final log is cut at `kill`:
/// the last acked prefix at or below it.
fn expected_at(prefixes: &[(u64, DatabaseState)], kill: u64) -> &DatabaseState {
    prefixes
        .iter()
        .rev()
        .find(|(off, _)| *off <= kill)
        .map(|(_, s)| s)
        .unwrap_or(&prefixes[0].1)
}

fn wal_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the log at ANY byte offset — record boundaries and
    /// mid-record torn tails alike — recovers to the valid batch prefix.
    #[test]
    fn any_kill_offset_recovers_to_a_valid_prefix(
        seed in 0u64..1_000_000,
        workers in prop::sample::select(vec![1usize, 2, 4]),
        snapshot_every in prop::sample::select(vec![0u64, 3]),
    ) {
        let dir = fresh_dir("kill");
        let cfg = config(&dir, workers, snapshot_every);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
        let prefixes = run_workload(&mut db, &mut rng, 12);
        let (generation, end) = db.wal_position().unwrap();
        drop(db);

        // Every acked boundary, plus random mid-record cuts.
        let mut kills: Vec<u64> = prefixes.iter().map(|(off, _)| *off).collect();
        for _ in 0..6 {
            kills.push(rng.gen_range(0..=end));
        }
        let log = wal_file(&dir, generation);
        let pristine = std::fs::read(&log).unwrap();
        for kill in kills {
            std::fs::write(&log, &pristine[..kill.min(pristine.len() as u64) as usize])
                .unwrap();
            let (recovered, report) = Database::recover(cfg.clone()).unwrap();
            prop_assert!(recovered.verify_integrity().is_clean());
            let got = recovered.snapshot().unwrap();
            prop_assert_eq!(
                &got,
                expected_at(&prefixes, kill),
                "kill at {} of {} ({})",
                kill,
                end,
                report
            );
            // Recovery truncated the tail; put the full log back for the
            // next cut.
            std::fs::write(&log, &pristine).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Corrupting a record's checksum in place ends the valid prefix at
    /// that record — even though later records are physically intact.
    #[test]
    fn corrupted_checksum_record_ends_the_prefix(
        seed in 0u64..1_000_000,
        workers in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let dir = fresh_dir("crc");
        let cfg = config(&dir, workers, 0); // one generation, no snapshots
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db =
            Database::new_with_config(schema(), DbmsProfile::ideal(), cfg.clone()).unwrap();
        let prefixes = run_workload(&mut db, &mut rng, 12);
        let (generation, _) = db.wal_position().unwrap();
        drop(db);
        prop_assume!(prefixes.len() > 1); // at least one committed record

        // Record k occupies (prefixes[k-1].0 .. prefixes[k].0]; its 8
        // checksum bytes start 4 bytes in. Flip one of them.
        let k = rng.gen_range(1..prefixes.len());
        let start = prefixes[k - 1].0;
        let victim = start + 4 + rng.gen_range(0..8u64);
        let log = wal_file(&dir, generation);
        let mut bytes = std::fs::read(&log).unwrap();
        bytes[victim as usize] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();

        let (recovered, report) = Database::recover(cfg).unwrap();
        prop_assert!(recovered.verify_integrity().is_clean());
        prop_assert!(report.torn_tail, "{}", report);
        prop_assert_eq!(
            &recovered.snapshot().unwrap(),
            &prefixes[k - 1].1,
            "corrupted record {}",
            k
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
