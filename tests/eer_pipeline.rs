//! Property tests over randomly generated EER schemas: translation
//! invariants, amenability-classifier agreement with the merge pipeline,
//! and SDT deployability on every dialect.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::{prop52_nna_only, Merge};
use relmerge::ddl::{generate, run_sdt, Dialect, SdtOption};
use relmerge::eer::{classify_all, translate, Amenability};
use relmerge::workload::{random_eer, EerSpec};

fn spec_strategy() -> impl Strategy<Value = EerSpec> {
    (
        1usize..6,
        0usize..4,
        0usize..3,
        0usize..6,
        0usize..4,
        0.0f64..=1.0,
    )
        .prop_map(
            |(
                entities,
                specializations,
                weak_entities,
                relationships,
                max_attrs,
                optional_prob,
            )| {
                EerSpec {
                    entities,
                    specializations,
                    weak_entities,
                    relationships,
                    max_attrs,
                    optional_prob,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The [11] translation invariants hold for arbitrary EER schemas:
    /// BCNF, key-based inclusion dependencies, NNA-only null constraints,
    /// and one relation-scheme per object-set.
    #[test]
    fn translation_invariants(spec in spec_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let eer = random_eer(&spec, &mut rng);
        eer.validate().expect("generator produces valid schemas");
        let rs = translate(&eer).expect("translation");
        prop_assert!(rs.is_bcnf());
        prop_assert!(rs.key_based_inds_only());
        prop_assert!(rs.nna_only());
        prop_assert_eq!(
            rs.schemes().len(),
            eer.entities.len() + eer.relationships.len()
        );
        // Every dialect can deploy the one-to-one translation of a fully
        // declarative schema.
        for dialect in Dialect::ALL {
            let script = generate(&rs, dialect).expect("ddl");
            prop_assert!(script.unsupported().is_empty(), "{}", dialect);
        }
    }

    /// Amenability classification agrees with the actual
    /// translate → merge → remove pipeline on every classified group:
    /// NNA-only verdicts are confirmed by merging, general-null verdicts by
    /// the survival of non-NNA constraints.
    #[test]
    fn classifier_agrees_with_pipeline(spec in spec_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let eer = random_eer(&spec, &mut rng);
        let rs = translate(&eer).expect("translation");
        for group in classify_all(&eer) {
            let mut set: Vec<&str> = vec![group.root.as_str()];
            set.extend(group.members.iter().map(String::as_str));
            // The group's schemes must be mergeable at all (compatible
            // keys hold by construction for stars/hierarchies over the
            // same root identifier).
            let Ok(mut merged) = Merge::plan(&rs, &set, "MERGED_GROUP") else {
                continue; // e.g. key arity mismatch across random groups
            };
            merged.remove_all_removable().expect("remove");
            let nna_only = merged
                .generated_null_constraints()
                .iter()
                .all(|c| c.is_nna());
            match group.amenability {
                Amenability::NnaOnly => {
                    prop_assert!(
                        nna_only,
                        "classifier said NNA-only but pipeline kept {:?} (group {:?})",
                        merged.generated_null_constraints(),
                        set
                    );
                    // And Proposition 5.2's syntactic conditions concur.
                    prop_assert!(prop52_nna_only(&rs, &set).expect("check").is_empty());
                }
                Amenability::GeneralNullConstraints => {
                    // The classifier is conservative: violations mean the
                    // *sufficient* conditions failed; the pipeline may
                    // still come out clean in corner cases (e.g. a
                    // relationship attribute that is also single). Only
                    // check the implication direction backed by Prop 5.2.
                    if !prop52_nna_only(&rs, &set).expect("check").is_empty() {
                        // Nothing further to assert — 5.2 is sufficient,
                        // not necessary.
                    }
                }
            }
        }
    }

    /// SDT deploys every random EER schema on every dialect, under both
    /// options, without unsupported-constraint warnings, and merging never
    /// increases the scheme count.
    #[test]
    fn sdt_always_deployable(spec in spec_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let eer = random_eer(&spec, &mut rng);
        for dialect in Dialect::ALL {
            for option in [SdtOption::OneToOne, SdtOption::Merged] {
                let out = run_sdt(&eer, option, dialect).expect("sdt");
                prop_assert!(
                    out.script.unsupported().is_empty(),
                    "{dialect} {option:?}: {:?}",
                    out.script.unsupported().iter().map(|s| s.sql()).collect::<Vec<_>>()
                );
                prop_assert!(out.scheme_count.1 <= out.scheme_count.0);
                prop_assert!(out.schema.is_bcnf());
            }
        }
    }
}
