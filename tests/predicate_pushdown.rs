//! Whole-system property tests for the predicate optimizer and
//! cross-operator pushdown: on random predicate trees (with null literals
//! and null-padded rows) the optimized form must agree with the original
//! row-by-row; executing with pushdown on must return byte-identical
//! results to pushdown off at every worker count while never *increasing*
//! the scan/probe counters (strategies pinned); the plan fingerprint must
//! be stable across logically equivalent predicate forms; and an injected
//! fault at `engine.query.pushdown` must fall back to the legacy
//! root-filter path with identical results and stats.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relmerge::engine::fault::site;
use relmerge::engine::{
    fingerprint, optimize, Database, DbmsProfile, FaultMode, FaultPlan, JoinStep, Optimized,
    Predicate, QueryPlan,
};
use relmerge::relational::{
    Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Tuple, Value,
};
use relmerge::workload::{consistent_state, star_schema, StarSpec, StateSpec};

/// A random predicate tree over `attrs`: leaves mix equality against small
/// integers, equality against the null literal, and null tests; inner
/// nodes mix conjunction, disjunction, and negation.
fn random_pred(rng: &mut StdRng, attrs: &[String], depth: usize) -> Predicate {
    if depth == 0 || rng.gen_bool(0.35) {
        let a = attrs[rng.gen_range(0..attrs.len())].clone();
        match rng.gen_range(0..5) {
            0 | 1 => Predicate::eq(a, Value::Int(rng.gen_range(-2i64..12))),
            2 => Predicate::eq(a, Value::Null),
            3 => Predicate::is_null(a),
            _ => Predicate::not_null(a),
        }
    } else {
        let l = random_pred(rng, attrs, depth - 1);
        match rng.gen_range(0..4) {
            0 => l.and(random_pred(rng, attrs, depth - 1)),
            1 => l.or(random_pred(rng, attrs, depth - 1)),
            2 => l.negate(),
            _ => l.and(random_pred(rng, attrs, depth - 1)).negate(),
        }
    }
}

/// A random value row over `width` columns, with nulls.
fn random_row(rng: &mut StdRng, width: usize) -> Vec<Value> {
    (0..width)
        .map(|_| {
            if rng.gen_bool(0.3) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(-2i64..12))
            }
        })
        .collect()
}

/// ROOT and the attributes visible after joining every satellite.
fn star_attrs(satellites: usize, non_key: usize) -> Vec<String> {
    let mut v = vec!["ROOT.K".to_owned()];
    for s in 0..satellites {
        v.push(format!("S{s}.K"));
        for j in 0..non_key {
            v.push(format!("S{s}.V{j}"));
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `optimize` is semantics-preserving: over random trees and random
    /// rows (nulls included), the optimized predicate agrees with the
    /// original on every row — the classical-rewrite soundness the
    /// pushdown partition relies on.
    #[test]
    fn optimize_preserves_row_semantics(seed in any::<u64>(), width in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let header: Vec<Attribute> = (0..width)
            .map(|i| Attribute::new(format!("A{i}"), Domain::Int))
            .collect();
        let attrs: Vec<String> = header.iter().map(|a| a.name().to_owned()).collect();
        for _ in 0..8 {
            let p = random_pred(&mut rng, &attrs, 4);
            let original = p.compile(&header).expect("known attrs");
            let optimized: std::result::Result<_, bool> = match optimize(&p) {
                Optimized::Always(b) => Err(b),
                Optimized::Pred(q) => Ok(q.compile(&header).expect("optimize keeps attrs")),
            };
            for _ in 0..32 {
                let row = random_row(&mut rng, width);
                let want = original.matches(&row);
                let got = match &optimized {
                    Ok(cp) => cp.matches(&row),
                    Err(b) => *b,
                };
                prop_assert_eq!(got, want, "optimize changed semantics of {:?} on {:?}", p, row);
            }
        }
    }

    /// Pushdown on and off return byte-identical results at workers
    /// {1,2,4}; with the join strategy pinned (so placement, not strategy,
    /// is the only difference) the scan and scan+probe counters never
    /// increase with pushdown on; and per-setting stats are identical at
    /// every worker count.
    #[test]
    fn pushdown_equivalent_and_counters_monotone(
        satellites in 1usize..4,
        rows in 1usize..24,
        coverage in 0.0f64..=1.0,
        force_hash in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites, non_key_attrs: 2, externals: 0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = star_schema(&spec);
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage },
            &mut rng,
        ).expect("state");
        let attrs = star_attrs(satellites, 2);
        let threshold = if force_hash { 0 } else { usize::MAX };

        for _ in 0..4 {
            let mut plan = QueryPlan::scan("ROOT");
            for s in 0..satellites {
                let rel = format!("S{s}");
                let key = format!("{rel}.K");
                let step = if rng.gen_bool(0.5) {
                    JoinStep::outer(&rel, &["ROOT.K"], &[key.as_str()])
                } else {
                    JoinStep::inner(&rel, &["ROOT.K"], &[key.as_str()])
                };
                plan = plan.join(step);
            }
            let plan = plan.filter(random_pred(&mut rng, &attrs, 3));

            let run = |pushdown: bool, workers: usize| {
                let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).expect("db");
                db.load_state(&state).expect("load");
                db.configure(
                    db.config()
                        .hash_join_threshold(threshold)
                        .predicate_pushdown(pushdown)
                        .parallelism(workers),
                );
                db.execute(&plan).expect("execution")
            };

            let (off_rel, off_stats) = run(false, 1);
            let (on_rel, on_stats) = run(true, 1);
            prop_assert_eq!(&on_rel, &off_rel, "pushdown changed the result");
            prop_assert!(
                on_stats.rows_scanned <= off_stats.rows_scanned,
                "pushdown increased scans: {} > {}",
                on_stats.rows_scanned, off_stats.rows_scanned
            );
            prop_assert!(
                on_stats.rows_scanned + on_stats.index_probes
                    <= off_stats.rows_scanned + off_stats.index_probes,
                "pushdown increased scan+probe work"
            );
            for workers in [2usize, 4] {
                let (rel, stats) = run(true, workers);
                prop_assert_eq!(&rel, &on_rel, "pushdown not byte-identical at {} workers", workers);
                prop_assert_eq!(stats, on_stats, "stats vary with workers (pushdown on)");
                let (rel, stats) = run(false, workers);
                prop_assert_eq!(&rel, &off_rel, "legacy path not byte-identical at {} workers", workers);
                prop_assert_eq!(stats, off_stats, "stats vary with workers (pushdown off)");
            }
        }
    }

    /// The plan fingerprint is invariant under logically equivalent
    /// predicate forms — double negation and De Morgan rewrites — while
    /// genuinely different shapes (negated predicate, changed connective)
    /// keep distinct fingerprints.
    #[test]
    fn fingerprint_stable_across_equivalent_forms(
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let base = || {
            Predicate::eq("ROOT.K", Value::Int(a))
                .and(Predicate::not_null("S0.V0").or(Predicate::eq("S0.K", Value::Int(b))))
        };
        let fp = |pred: Predicate| {
            let plan = QueryPlan::scan("ROOT")
                .join(JoinStep::inner("S0", &["ROOT.K"], &["S0.K"]))
                .filter(pred);
            fingerprint(&plan, &[relmerge::engine::JoinStrategy::IndexNestedLoop])
        };
        let f = fp(base());
        // Double negation.
        prop_assert_eq!(f, fp(base().negate().negate()), "¬¬p changed the fingerprint");
        // De Morgan over the inner disjunction:
        // A ∧ (B ∨ C) ≡ A ∧ ¬(¬B ∧ ¬C).
        let demorgan = Predicate::eq("ROOT.K", Value::Int(a)).and(
            Predicate::not_null("S0.V0")
                .negate()
                .and(Predicate::eq("S0.K", Value::Int(b)).negate())
                .negate(),
        );
        prop_assert_eq!(f, fp(demorgan), "De Morgan rewrite changed the fingerprint");
        // Negative controls: the negation and a flipped connective are
        // different predicates and must hash differently.
        // ¬p must not collide with p.
        prop_assert_ne!(f, fp(base().negate()));
        let flipped = Predicate::eq("ROOT.K", Value::Int(a))
            .or(Predicate::not_null("S0.V0").and(Predicate::eq("S0.K", Value::Int(b))));
        // Flipping the connective must not collide either.
        prop_assert_ne!(f, fp(flipped));
    }

    /// An injected error or panic at `engine.query.pushdown` is contained:
    /// the query still succeeds, its result and stats are byte-identical
    /// to a pushdown-off run, and the fallback counter records it.
    #[test]
    fn pushdown_fault_falls_back_byte_identical(
        rows in 1usize..24,
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites: 2, non_key_attrs: 1, externals: 0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = star_schema(&spec);
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage: 0.7 },
            &mut rng,
        ).expect("state");
        let plan = QueryPlan::scan("ROOT")
            .join(JoinStep::outer("S0", &["ROOT.K"], &["S0.K"]))
            .join(JoinStep::inner("S1", &["ROOT.K"], &["S1.K"]))
            .filter(random_pred(&mut rng, &star_attrs(2, 1), 3));

        let mut reference = Database::new(schema.clone(), DbmsProfile::ideal()).expect("db");
        reference.load_state(&state).expect("load");
        reference.configure(reference.config().predicate_pushdown(false));
        let (want, want_stats) = reference.execute(&plan).expect("reference execution");

        for mode in [FaultMode::Error, FaultMode::Panic] {
            let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).expect("db");
            db.load_state(&state).expect("load");
            let armed = db.set_fault_plan(FaultPlan::new().fail_at(site::PUSHDOWN, 0, mode));
            let (got, got_stats) = db.execute(&plan).expect("fault must be contained");
            prop_assert_eq!(armed.fired(site::PUSHDOWN), 1, "site never armed ({:?})", mode);
            prop_assert_eq!(&got, &want, "fallback result differs ({:?})", mode);
            prop_assert_eq!(got_stats, want_stats, "fallback stats differ ({:?})", mode);
            let snap = db.metrics_registry().snapshot();
            prop_assert_eq!(snap.counters["engine.query.pushdown.fallbacks"], 1);
            // The armed shot is spent: the next execution pushes again,
            // still byte-identical.
            let (again, _) = db.execute(&plan).expect("clean re-execution");
            prop_assert_eq!(&again, &want);
        }
    }
}

/// A selective conjunct pushed into an early join shrinks the estimate the
/// planner feeds the *next* step, flipping it from a hash join to index
/// nested loops — visible in the trace labels and the probe counters.
#[test]
fn pushdown_selectivity_flips_hash_to_inl() {
    let a = |n: &str| Attribute::new(n, Domain::Int);
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("C0", vec![a("A.K")], &["A.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("C1", vec![a("B.K"), a("B.V")], &["B.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("C2", vec![a("D.K")], &["D.K"]).unwrap())
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("C0", &["A.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("C1", &["B.K", "B.V"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("C2", &["D.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("C1", &["B.K"], "C0", &["A.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("C2", &["D.K"], "C0", &["A.K"]))
        .unwrap();
    let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
    for k in 0..100i64 {
        db.insert("C0", Tuple::new(vec![Value::Int(k)])).unwrap();
        db.insert("C1", Tuple::new(vec![Value::Int(k), Value::Int(k % 10)]))
            .unwrap();
        db.insert("C2", Tuple::new(vec![Value::Int(k)])).unwrap();
    }
    // 100 root rows ≥ the default hash threshold, so without pushdown both
    // joins hash; with the B.V conjunct pushed into the C1 step the
    // estimate entering C2 drops to ~10, under the threshold.
    let plan = QueryPlan::scan("C0")
        .join(JoinStep::inner("C1", &["A.K"], &["B.K"]))
        .join(JoinStep::inner("C2", &["B.K"], &["D.K"]))
        .filter(Predicate::eq("B.V", Value::Int(3)));

    db.configure(db.config().predicate_pushdown(false));
    let (off_rel, _, off_trace) = db.execute_traced(&plan).unwrap();
    db.configure(db.config().predicate_pushdown(true));
    let (on_rel, on_stats, on_trace) = db.execute_traced(&plan).unwrap();

    assert_eq!(on_rel, off_rel, "strategy flip changed the result");
    let label_of = |trace: &relmerge::engine::QueryTrace, rel: &str| {
        trace
            .ops
            .iter()
            .find(|op| op.label.contains(rel))
            .map(|op| op.label.clone())
            .unwrap_or_default()
    };
    assert!(
        label_of(&off_trace, "C2").starts_with("HashJoin"),
        "expected a hash join without pushdown: {}",
        label_of(&off_trace, "C2")
    );
    assert!(
        label_of(&on_trace, "C2").starts_with("Join"),
        "expected INL after pushdown shrank the estimate: {}",
        label_of(&on_trace, "C2")
    );
    assert!(
        label_of(&on_trace, "C1").contains("[pushed]"),
        "C1 must carry the pushed conjunct: {}",
        label_of(&on_trace, "C1")
    );
    assert!(on_stats.index_probes > 0, "INL probes must be counted");
}

/// A pushed root `Eq` on an indexed attribute upgrades the full scan to an
/// index point-lookup, visible in the trace and in the scan counter.
#[test]
fn pushed_root_eq_upgrades_scan_to_lookup() {
    let spec = StarSpec {
        satellites: 1,
        non_key_attrs: 1,
        externals: 0,
    };
    let schema = star_schema(&spec);
    let mut rng = StdRng::seed_from_u64(7);
    let state = consistent_state(
        &schema,
        &StateSpec {
            root_rows: 20,
            coverage: 1.0,
        },
        &mut rng,
    )
    .expect("state");
    let mut db = Database::new(schema, DbmsProfile::ideal()).unwrap();
    db.load_state(&state).unwrap();
    let key = {
        let (all, _) = db.execute(&QueryPlan::scan("ROOT")).unwrap();
        all.rows().first().expect("nonempty root").get(0).clone()
    };
    let plan = QueryPlan::scan("ROOT")
        .join(JoinStep::outer("S0", &["ROOT.K"], &["S0.K"]))
        .filter(Predicate::eq("ROOT.K", key).and(Predicate::not_null("S0.V0")));

    db.configure(db.config().predicate_pushdown(false));
    let (off_rel, off_stats) = db.execute(&plan).unwrap();
    db.configure(db.config().predicate_pushdown(true));
    let (on_rel, on_stats, trace) = db.execute_traced(&plan).unwrap();

    assert_eq!(on_rel, off_rel);
    assert!(
        trace.ops[0].label.contains("(pushed Eq)"),
        "root access must be the upgraded lookup: {}",
        trace.ops[0].label
    );
    assert!(off_stats.rows_scanned >= 20, "legacy path scans the root");
    assert_eq!(
        on_stats.rows_scanned, 0,
        "upgraded root access must not scan"
    );
    assert!(
        on_stats.rows_scanned + on_stats.index_probes
            <= off_stats.rows_scanned + off_stats.index_probes,
        "upgrade must not increase total access work"
    );
    let snap = db.metrics_registry().snapshot();
    assert!(snap.counters["engine.query.pushed_conjuncts"] >= 2);
}
