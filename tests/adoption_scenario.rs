//! The full adoption scenario a downstream user of this library would run:
//! design in EER, translate, let the advisor merge what the target DBMS can
//! maintain, migrate existing data through the composed state mappings,
//! serve queries and DML on the merged database, and prove nothing was
//! lost — at a realistic scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::{Advisor, MergeReport};
use relmerge::ddl::{advisor_config_for, backward_migration, forward_migration, generate, Dialect};
use relmerge::engine::{Database, DbmsProfile, LogicalQuery};
use relmerge::relational::{Tuple, Value};
use relmerge::workload::{generate_university, UniversitySpec};

#[test]
fn university_adoption_end_to_end() {
    // 1. Existing system: the Figure 3 schema with 2 000 courses of data.
    let mut rng = StdRng::seed_from_u64(2026);
    let u = generate_university(
        &UniversitySpec {
            courses: 2_000,
            departments: 30,
            persons: 800,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .unwrap();
    assert!(u.state.is_consistent(&u.schema).unwrap());

    // 2. The advisor proposes merges the SYBASE target can maintain.
    let config = advisor_config_for(Dialect::Sybase40);
    let (merged_schema, pipeline) = Advisor::new(config).greedy_pipeline(&u.schema).unwrap();
    assert!(!pipeline.is_empty());
    assert!(pipeline.joins_eliminated() >= 3, "the COURSE chain merges");
    for step in pipeline.steps() {
        let report = MergeReport::new(step);
        assert!(report.bcnf);
    }

    // 3. Deployment artifacts exist for the target.
    let ddl = generate(&merged_schema, Dialect::Sybase40).unwrap();
    assert!(ddl.unsupported().is_empty());
    for step in pipeline.steps() {
        let fwd = forward_migration(step).unwrap();
        assert!(fwd.contains("FULL OUTER JOIN"));
        assert!(!backward_migration(step).unwrap().is_empty());
    }

    // 4. Migrate the data through the composed mappings.
    let merged_state = pipeline.apply(&u.state).unwrap();
    assert!(merged_state.is_consistent(&merged_schema).unwrap());

    // 5. Serve from the engine under the SYBASE profile.
    let mut db = Database::new(merged_schema.clone(), DbmsProfile::sybase40()).unwrap();
    db.load_state(&merged_state).unwrap();

    // The course-detail logical query plans without joins on the merged
    // schema and with 3 joins on the original.
    let q = LogicalQuery::select(&["C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"]);
    let merged_plan = relmerge::engine::plan(&merged_schema, &q).unwrap();
    assert_eq!(merged_plan.joins.len(), 0);
    let original_plan = relmerge::engine::plan(&u.schema, &q).unwrap();
    assert_eq!(original_plan.joins.len(), 3);
    let (merged_result, _) = db.query(&q).unwrap();
    assert_eq!(merged_result.len(), 2_000);

    // 6. Ongoing DML against the merged database, trigger-checked.
    let merged_name = pipeline
        .steps()
        .iter()
        .map(|s| s.merged_name())
        .find(|n| n.starts_with("COURSE"))
        .expect("course chain merged");
    db.transaction(|tx| {
        tx.insert("DEPARTMENT", Tuple::new([Value::text("new-dept")]))?;
        tx.insert(
            merged_name,
            Tuple::new([
                Value::Int(50_000),
                Value::text("new-dept"),
                Value::Null,
                Value::Null,
            ]),
        )?;
        Ok(())
    })
    .unwrap();
    // A constraint-violating bundle rolls back wholesale.
    let before = db.snapshot().unwrap();
    let result = db.transaction(|tx| {
        tx.insert(
            merged_name,
            Tuple::new([
                Value::Int(50_001),
                Value::text("ghost-dept"), // dangling FK
                Value::Null,
                Value::Null,
            ]),
        )?;
        Ok(())
    });
    assert!(result.is_err());
    assert_eq!(db.snapshot().unwrap(), before);

    // 7. Back out: the inverse mappings reconstruct a consistent state of
    // the original schema containing everything, including the new course.
    let current = db.snapshot().unwrap();
    let back = pipeline.invert(&current).unwrap();
    assert!(back.is_consistent(&u.schema).unwrap());
    assert_eq!(
        back.relation("COURSE").unwrap().len(),
        2_001,
        "the post-migration insert survives the round trip"
    );
    assert!(back
        .relation("DEPARTMENT")
        .unwrap()
        .contains(&Tuple::new([Value::text("new-dept")])));
    // And the original data is exactly preserved.
    for rel in ["OFFER", "TEACH", "ASSIST"] {
        let original = u.state.relation(rel).unwrap();
        let recovered = back.relation(rel).unwrap();
        for t in original.iter() {
            assert!(recovered.contains(t), "{rel} lost {t}");
        }
    }
}
