//! E8–E12 property tests: the paper's propositions machine-checked on
//! randomly generated schemas and consistent states.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::{
    check_both, check_forward, find_key_relation, is_key_relation_semantically,
    prop51_inds_key_based, prop51_keys_non_null, prop52_nna_only, Merge,
};
use relmerge::relational::RelationalSchema;
use relmerge::workload::{
    chain_merge_set, chain_schema, consistent_state, star_merge_set, star_schema, ChainSpec,
    StarSpec, StateSpec,
};

/// A generated merge scenario: schema + merge set + a consistent state.
fn scenario(
    schema: &RelationalSchema,
    set: &[String],
    seed: u64,
    rows: usize,
    coverage: f64,
) -> (relmerge::core::Merged, relmerge::relational::DatabaseState) {
    let refs: Vec<&str> = set.iter().map(String::as_str).collect();
    let merged = Merge::plan(schema, &refs, "MERGED").expect("plan");
    let mut rng = StdRng::seed_from_u64(seed);
    let state = consistent_state(
        schema,
        &StateSpec {
            root_rows: rows,
            coverage,
        },
        &mut rng,
    )
    .expect("state");
    assert!(state.is_consistent(schema).expect("check"));
    (merged, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// E9 / Proposition 4.1 on stars: Merge preserves information capacity
    /// and BCNF for arbitrary star shapes and consistent states.
    #[test]
    fn prop41_star(
        satellites in 1usize..6,
        non_key in 1usize..4,
        externals in 0usize..3,
        rows in 1usize..60,
        coverage in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites, non_key_attrs: non_key, externals };
        let schema = star_schema(&spec);
        let set = star_merge_set(&spec);
        let (merged, state) = scenario(&schema, &set, seed, rows, coverage);
        let report = check_forward(&merged, &state).expect("check");
        prop_assert!(report.holds(), "{report:?}");
        prop_assert!(merged.schema().is_bcnf());
    }

    /// E9 / Proposition 4.1 on chains (the Figure 4/5 shape generalized).
    #[test]
    fn prop41_chain(
        depth in 2usize..6,
        non_key in 0usize..3,
        rows in 1usize..60,
        coverage in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let spec = ChainSpec { depth, non_key_attrs: non_key };
        let schema = chain_schema(&spec);
        let set = chain_merge_set(&spec);
        let (merged, state) = scenario(&schema, &set, seed, rows, coverage);
        let report = check_forward(&merged, &state).expect("check");
        prop_assert!(report.holds(), "{report:?}");
        prop_assert!(merged.schema().is_bcnf());
    }

    /// E10 / Proposition 4.2: Remove preserves information capacity — the
    /// full pipeline (merge + remove-all) still round-trips, both ways.
    #[test]
    fn prop42_remove(
        satellites in 1usize..5,
        non_key in 1usize..4,
        rows in 1usize..50,
        coverage in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites, non_key_attrs: non_key, externals: 0 };
        let schema = star_schema(&spec);
        let set = star_merge_set(&spec);
        let (mut merged, state) = scenario(&schema, &set, seed, rows, coverage);
        merged.remove_all_removable().expect("remove");
        let merged_state = merged.apply(&state).expect("apply");
        let report = check_both(&merged, &state, &merged_state).expect("check");
        prop_assert!(report.holds(), "{report:?}");
        prop_assert!(merged.schema().is_bcnf());
        // Every satellite key is removable in a pure star.
        prop_assert_eq!(
            merged.merged_scheme().attr_names().len(),
            1 + satellites * non_key
        );
    }

    /// E9/E10 backward direction on *independently generated* merged
    /// states: η′ maps them to consistent originals, η reproduces them,
    /// values are preserved — for states the forward mapping never built.
    #[test]
    fn backward_direction_on_fresh_merged_states(
        use_chain in any::<bool>(),
        satellites in 1usize..5,
        depth in 2usize..5,
        non_key in 1usize..3,
        rows in 1usize..50,
        presence in 0.0f64..=1.0,
        do_remove in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (schema, set) = if use_chain {
            let spec = ChainSpec { depth, non_key_attrs: non_key };
            (chain_schema(&spec), chain_merge_set(&spec))
        } else {
            let spec = StarSpec { satellites, non_key_attrs: non_key, externals: 0 };
            (star_schema(&spec), star_merge_set(&spec))
        };
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let mut merged = Merge::plan(&schema, &refs, "MERGED").expect("plan");
        if do_remove {
            merged.remove_all_removable().expect("remove");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let merged_st = relmerge::workload::merged_state(
            &merged,
            &relmerge::workload::MergedStateSpec { rows, presence },
            &mut rng,
        ).expect("merged state");
        prop_assert!(merged_st.is_consistent(merged.schema()).expect("check"));
        // Definition 2.1, conditions 2-4 in the backward direction.
        let back = merged.invert(&merged_st).expect("invert");
        prop_assert!(back.is_consistent(merged.original_schema()).expect("check"));
        let again = merged.apply(&back).expect("apply");
        prop_assert_eq!(&again, &merged_st);
        prop_assert!(back.values_included_in(&merged_st));
    }

    /// E8 / Proposition 3.1: the syntactic `Refkey*` characterization
    /// implies the semantic Definition 3.1 condition on consistent states
    /// with full coverage.
    #[test]
    fn prop31_agreement(
        depth in 2usize..5,
        rows in 1usize..40,
        seed in any::<u64>(),
    ) {
        let spec = ChainSpec { depth, non_key_attrs: 1 };
        let schema = chain_schema(&spec);
        let set = chain_merge_set(&spec);
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let schemes: Vec<&relmerge::relational::RelationScheme> =
            refs.iter().map(|n| schema.scheme_required(n).expect("scheme")).collect();
        let found = find_key_relation(&schema, &schemes).expect("chain has a key-relation");
        prop_assert_eq!(found.name(), "C0");
        // With coverage 1.0 every key value propagates down the chain, so
        // the semantic condition holds for the syntactic key-relation.
        let mut rng = StdRng::seed_from_u64(seed);
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage: 1.0 },
            &mut rng,
        ).expect("state");
        prop_assert!(
            is_key_relation_semantically(&schema, &state, "C0", &refs).expect("check")
        );
    }

    /// E11 / Proposition 5.1: the syntactic predicates agree with direct
    /// inspection of the Merge output.
    #[test]
    fn prop51_agreement(
        satellites in 1usize..5,
        non_key in 1usize..3,
        externals in 0usize..3,
        seed in any::<u64>(),
    ) {
        let spec = StarSpec { satellites, non_key_attrs: non_key, externals };
        let schema = star_schema(&spec);
        // Merge a strict subset sometimes: drop the last satellite on odd
        // seeds, so external references onto merged keys can appear.
        let mut set = star_merge_set(&spec);
        if seed % 2 == 1 && satellites > 1 {
            set.pop();
        }
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let predicted_inds = prop51_inds_key_based(&schema, &refs).expect("check");
        let predicted_keys = prop51_keys_non_null(&schema, &refs).expect("check");
        let merged = Merge::plan(&schema, &refs, "MERGED").expect("plan");
        prop_assert_eq!(predicted_inds, merged.schema().key_based_inds_only());
        // Star members have unique primary keys, so Rm's declared keys are
        // exactly Km → non-null; the predicate must say so.
        prop_assert!(predicted_keys);
        let all_declared_nna = merged
            .merged_scheme()
            .candidate_keys()
            .iter()
            .flatten()
            .all(|k| merged.schema().attr_not_null("MERGED", k));
        prop_assert_eq!(predicted_keys, all_declared_nna);
    }

    /// E12 / Proposition 5.2: the syntactic conditions predict whether the
    /// merge-and-remove pipeline ends with only NNA constraints.
    #[test]
    fn prop52_agreement(
        satellites in 1usize..5,
        non_key in 1usize..3,
        use_chain in any::<bool>(),
        depth in 2usize..5,
    ) {
        let (schema, set) = if use_chain {
            let spec = ChainSpec { depth, non_key_attrs: non_key };
            (chain_schema(&spec), chain_merge_set(&spec))
        } else {
            let spec = StarSpec { satellites, non_key_attrs: non_key, externals: 0 };
            (star_schema(&spec), star_merge_set(&spec))
        };
        let refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let predicted = prop52_nna_only(&schema, &refs).expect("check").is_empty();
        let mut merged = Merge::plan(&schema, &refs, "MERGED").expect("plan");
        merged.remove_all_removable().expect("remove");
        let actual = merged.generated_null_constraints().iter().all(|c| c.is_nna());
        // The proposition is an implication (conditions ⇒ NNA-only);
        // check it, and additionally that on these families it is exact.
        if predicted {
            prop_assert!(actual);
        }
        let expected_exact = non_key == 1 && (!use_chain || depth == 2);
        if expected_exact {
            prop_assert!(predicted, "star/short-chain with 1 non-key attr must satisfy 5.2");
        }
    }
}
