//! E1–E7: exact reproduction of every figure in the paper.

use relmerge::core::{Merge, NotRemovable};
use relmerge::eer::{
    classify_generalization, classify_many_one_star, figures, repair, translate, translate_teorey,
    Amenability,
};
use relmerge::relational::{DatabaseState, InclusionDep, NullConstraint, Tuple, Value};

/// E1 / Figure 1: the Teorey translation admits a state inconsistent with
/// the ER semantics; the modular translation plus the paper's repairing
/// null constraint rejects it.
#[test]
fn e1_figure1_teorey_vs_modular() {
    let eer = figures::fig1_eer();
    let rs = translate(&eer).unwrap();
    // Figure 1(ii): four relation-schemes, all BCNF.
    assert_eq!(rs.schemes().len(), 4);
    assert!(rs.is_bcnf());
    let teorey = translate_teorey(&eer).unwrap();
    // Figure 1(iii): EMPLOYEE folded into WORKS; three relation-schemes.
    assert_eq!(teorey.schema.schemes().len(), 3);
    assert!(teorey.schema.scheme("EMPLOYEE").is_none());
    let works = teorey.schema.scheme("WORKS").unwrap();
    assert_eq!(works.attr_names(), ["E.SSN", "W.NR", "W.DATE"]);
    // The pitfall state.
    let mut st = DatabaseState::empty_for(&teorey.schema).unwrap();
    st.insert(
        "WORKS",
        Tuple::new([Value::Int(1), Value::Null, Value::Date(5)]),
    )
    .unwrap();
    assert!(st.is_consistent(&teorey.schema).unwrap());
    let repaired = repair(&teorey).unwrap();
    assert!(!st.is_consistent(&repaired).unwrap());
    // The repair is exactly the paper's DATE ⊑ NR.
    let added: Vec<&NullConstraint> = repaired
        .null_constraints()
        .iter()
        .filter(|c| !teorey.schema.null_constraints().contains(c))
        .collect();
    assert_eq!(
        added,
        [&NullConstraint::ne("WORKS", &["W.DATE"], &["W.NR"])]
    );
}

/// E2 / Figure 2: merging OFFER and TEACH with a synthetic key-relation;
/// §3's constraint examples hold on the merged relation.
#[test]
fn e2_figure2_assign() {
    use relmerge::relational::{Attribute, Domain, RelationScheme, RelationalSchema};
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new(
            "OFFER",
            vec![
                Attribute::new("O.CN", Domain::Int),
                Attribute::new("O.DN", Domain::Int),
            ],
            &["O.CN"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "TEACH",
            vec![
                Attribute::new("T.CN", Domain::Int),
                Attribute::new("T.FN", Domain::Int),
            ],
            &["T.CN"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.CN", "O.DN"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.CN", "T.FN"]))
        .unwrap();
    let m = Merge::plan_with_synthetic_key(&rs, &["OFFER", "TEACH"], "ASSIGN", &["CN"]).unwrap();
    // Figure 2's merged scheme: ASSIGN (CN, O.CN, O.DN, T.CN, T.FN).
    assert_eq!(
        m.merged_scheme().attr_names(),
        ["CN", "O.CN", "O.DN", "T.CN", "T.FN"]
    );
    // §3's example constraints are all generated: NS(T.CN,T.FN),
    // PN({O..},{T..}), T.CN =⊥ O.CN via CN (both TE constraints).
    let cons = m.generated_null_constraints();
    assert!(cons.contains(&&NullConstraint::ns("ASSIGN", &["T.CN", "T.FN"])));
    assert!(cons.contains(&&NullConstraint::pn(
        "ASSIGN",
        &[&["O.CN", "O.DN"], &["T.CN", "T.FN"]]
    )));
    assert!(cons.contains(&&NullConstraint::te("ASSIGN", &["CN"], &["O.CN"])));
    assert!(cons.contains(&&NullConstraint::te("ASSIGN", &["CN"], &["T.CN"])));

    // With TEACH[T.CN] ⊆ OFFER[O.CN], OFFER becomes the key-relation and
    // the merged relation is the outer-equi-join of r_O and r_T (paper §3).
    let mut rs2 = rs.clone();
    rs2.add_ind(InclusionDep::new("TEACH", &["T.CN"], "OFFER", &["O.CN"]))
        .unwrap();
    let m2 = Merge::plan(&rs2, &["OFFER", "TEACH"], "ASSIGN").unwrap();
    assert_eq!(
        m2.key_relation(),
        &relmerge::core::KeyRelationSpec::Member("OFFER".to_owned())
    );
}

/// E3 / Figures 3+7: the EER translation is exactly the Figure 3 schema.
#[test]
fn e3_figure3_translation() {
    let rs = translate(&figures::fig7_eer()).unwrap();
    assert_eq!(rs.schemes().len(), 8);
    assert_eq!(rs.inds().len(), 8);
    assert_eq!(rs.null_constraints().len(), 8);
    assert!(rs.is_bcnf() && rs.key_based_inds_only() && rs.nna_only());
    // Spot-check the two aggregation relationship schemes.
    let teach = rs.scheme("TEACH").unwrap();
    assert_eq!(teach.attr_names(), ["T.C.NR", "T.F.SSN"]);
    assert_eq!(teach.primary_key(), ["T.C.NR"]);
    assert!(rs.inds().contains(&InclusionDep::new(
        "TEACH",
        &["T.C.NR"],
        "OFFER",
        &["O.C.NR"]
    )));
}

/// E4 / Figure 4: Merge{COURSE, OFFER, TEACH} — exact output constraints
/// (the paper's (9)–(14)) and the non-removability of O.C.NR.
#[test]
fn e4_figure4_course_prime() {
    let rs = translate(&figures::fig7_eer()).unwrap();
    let m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH"], "COURSE_P").unwrap();
    let s = m.merged_scheme();
    assert_eq!(
        s.attr_names(),
        ["C.NR", "O.C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN"]
    );
    assert_eq!(s.primary_key(), ["C.NR"]);
    // Inclusion dependencies (9)–(11).
    let inds = m.schema().inds();
    assert!(inds.contains(&InclusionDep::new(
        "COURSE_P",
        &["O.D.NAME"],
        "DEPARTMENT",
        &["D.NAME"]
    )));
    assert!(inds.contains(&InclusionDep::new(
        "COURSE_P",
        &["T.F.SSN"],
        "FACULTY",
        &["F.SSN"]
    )));
    assert!(inds.contains(&InclusionDep::new(
        "ASSIST",
        &["A.C.NR"],
        "COURSE_P",
        &["O.C.NR"]
    )));
    // No internal inclusion dependencies survive.
    assert!(!inds
        .iter()
        .any(|i| i.lhs_rel == "COURSE_P" && i.rhs_rel == "COURSE_P"));
    // Null constraints (9)–(14), exactly.
    let expected = [
        NullConstraint::nna("COURSE_P", &["C.NR"]),
        NullConstraint::ns("COURSE_P", &["O.C.NR", "O.D.NAME"]),
        NullConstraint::ns("COURSE_P", &["T.C.NR", "T.F.SSN"]),
        NullConstraint::ne("COURSE_P", &["T.C.NR", "T.F.SSN"], &["O.C.NR", "O.D.NAME"]),
        NullConstraint::te("COURSE_P", &["C.NR"], &["O.C.NR"]),
        NullConstraint::te("COURSE_P", &["C.NR"], &["T.C.NR"]),
    ];
    let generated = m.generated_null_constraints();
    assert_eq!(generated.len(), expected.len());
    for e in &expected {
        assert!(generated.contains(&e), "missing {e}");
    }
    // BCNF preserved (Proposition 4.1 ii).
    assert!(m.schema().is_bcnf());
    // O.C.NR is NOT removable here (Definition 4.2 condition 2).
    assert!(matches!(
        m.removable("OFFER"),
        Err(NotRemovable::ExternalReference(_))
    ));
}

/// E5 / Figure 5: the four-way merge — constraints (9)–(17) exactly, and
/// all three former keys removable.
#[test]
fn e5_figure5_course_double_prime() {
    let rs = translate(&figures::fig7_eer()).unwrap();
    let m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_PP").unwrap();
    assert_eq!(
        m.merged_scheme().attr_names(),
        ["C.NR", "O.C.NR", "O.D.NAME", "T.C.NR", "T.F.SSN", "A.C.NR", "A.S.SSN"]
    );
    // Inclusion dependencies (9)–(11).
    let inds = m.schema().inds();
    assert_eq!(inds.iter().filter(|i| i.lhs_rel == "COURSE_PP").count(), 3);
    assert!(inds.contains(&InclusionDep::new(
        "COURSE_PP",
        &["A.S.SSN"],
        "STUDENT",
        &["S.SSN"]
    )));
    // Null constraints (9)–(17), exactly nine.
    let expected = [
        NullConstraint::nna("COURSE_PP", &["C.NR"]),
        NullConstraint::ns("COURSE_PP", &["O.C.NR", "O.D.NAME"]),
        NullConstraint::ns("COURSE_PP", &["T.C.NR", "T.F.SSN"]),
        NullConstraint::ns("COURSE_PP", &["A.C.NR", "A.S.SSN"]),
        NullConstraint::ne("COURSE_PP", &["T.C.NR", "T.F.SSN"], &["O.C.NR", "O.D.NAME"]),
        NullConstraint::ne("COURSE_PP", &["A.C.NR", "A.S.SSN"], &["O.C.NR", "O.D.NAME"]),
        NullConstraint::te("COURSE_PP", &["C.NR"], &["O.C.NR"]),
        NullConstraint::te("COURSE_PP", &["C.NR"], &["T.C.NR"]),
        NullConstraint::te("COURSE_PP", &["C.NR"], &["A.C.NR"]),
    ];
    let generated = m.generated_null_constraints();
    assert_eq!(generated.len(), expected.len());
    for e in &expected {
        assert!(generated.contains(&e), "missing {e}");
    }
    // O.C.NR, T.C.NR, A.C.NR are all removable — unlike in Figure 4.
    let mut removable = m.removable_groups();
    removable.sort_unstable();
    assert_eq!(removable, ["ASSIST", "OFFER", "TEACH"]);
}

/// E6 / Figure 6: the removal cascade ends with the paper's final scheme
/// and exactly its three null constraints.
#[test]
fn e6_figure6_removal() {
    let rs = translate(&figures::fig7_eer()).unwrap();
    let mut m = Merge::plan(&rs, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_PP").unwrap();
    let removed = m.remove_all_removable().unwrap();
    assert_eq!(removed.len(), 3);
    assert_eq!(
        m.merged_scheme().attr_names(),
        ["C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"]
    );
    let generated = m.generated_null_constraints();
    let expected = [
        NullConstraint::nna("COURSE_PP", &["C.NR"]),
        NullConstraint::ne("COURSE_PP", &["T.F.SSN"], &["O.D.NAME"]),
        NullConstraint::ne("COURSE_PP", &["A.S.SSN"], &["O.D.NAME"]),
    ];
    assert_eq!(generated.len(), expected.len());
    for e in &expected {
        assert!(generated.contains(&e), "missing {e}");
    }
    // "Inclusion Dependencies involving COURSE'' are unchanged" (Fig 6).
    let inds = m.schema().inds();
    assert!(inds.contains(&InclusionDep::new(
        "COURSE_PP",
        &["O.D.NAME"],
        "DEPARTMENT",
        &["D.NAME"]
    )));
    assert!(inds.contains(&InclusionDep::new(
        "COURSE_PP",
        &["T.F.SSN"],
        "FACULTY",
        &["F.SSN"]
    )));
    assert!(inds.contains(&InclusionDep::new(
        "COURSE_PP",
        &["A.S.SSN"],
        "STUDENT",
        &["S.SSN"]
    )));
    assert!(m.schema().is_bcnf());
}

/// E7b / Figure 8 × dialect capability matrix (§5.1): DB2 merges only the
/// NNA-only structures; trigger/rule systems merge all four.
#[test]
fn e7b_figure8_dialect_matrix() {
    use relmerge::ddl::{run_sdt, Dialect, SdtOption};
    let cases = [
        (figures::fig8_i(), false),
        (figures::fig8_ii(), false),
        (figures::fig8_iii(), true),
        (figures::fig8_iv(), true),
    ];
    for (eer, db2_merges) in &cases {
        let db2 = run_sdt(eer, SdtOption::Merged, Dialect::Db2).unwrap();
        assert_eq!(db2.merges_applied > 0, *db2_merges);
        assert!(db2.script.unsupported().is_empty());
        for dialect in [Dialect::Sybase40, Dialect::Ingres63, Dialect::Sql92] {
            let out = run_sdt(eer, SdtOption::Merged, dialect).unwrap();
            assert!(out.merges_applied > 0, "{dialect} should merge");
            assert!(out.script.unsupported().is_empty());
        }
    }
}

/// E7 / Figure 8: the amenability classification of the four structures.
#[test]
fn e7_figure8_amenability() {
    let i = classify_generalization(&figures::fig8_i(), "VEHICLE").unwrap();
    assert_eq!(i.amenability, Amenability::GeneralNullConstraints);
    let ii = classify_many_one_star(&figures::fig8_ii(), "PRODUCT").unwrap();
    assert_eq!(ii.amenability, Amenability::GeneralNullConstraints);
    let iii = classify_generalization(&figures::fig8_iii(), "ACCOUNT").unwrap();
    assert_eq!(iii.amenability, Amenability::NnaOnly);
    let iv = classify_many_one_star(&figures::fig8_iv(), "COURSE").unwrap();
    assert_eq!(iv.amenability, Amenability::NnaOnly);

    // §5.2's closing observation on Figure 7: COURSE's star fails the
    // conditions (OFFER is involved in TEACH/ASSIST), while OFFER's star
    // {TEACH, ASSIST} satisfies them.
    let eer = figures::fig7_eer();
    let course = classify_many_one_star(&eer, "COURSE").unwrap();
    assert_eq!(course.amenability, Amenability::GeneralNullConstraints);
    let offer = classify_many_one_star(&eer, "OFFER").unwrap();
    assert_eq!(offer.amenability, Amenability::NnaOnly);
}
