//! Whole-system property test for the morsel-parallel executor: on random
//! star and chain schemas carrying random consistent states, every
//! configuration of join-strategy threshold, morsel size, and worker count
//! must return the byte-identical relation, identical [`QueryStats`], and
//! a trace whose per-operator counters sum exactly to those stats.
//!
//! [`QueryStats`]: relmerge::engine::QueryStats

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::engine::{Database, DbmsProfile, JoinStep, Predicate, QueryPlan};
use relmerge::workload::{
    chain_schema, consistent_state, star_schema, ChainSpec, StarSpec, StateSpec,
};

/// ROOT joined with every satellite; bit `s` of `outer_mask` picks
/// outer/inner for satellite `s`.
fn star_plan(satellites: usize, outer_mask: u8, filter: bool) -> QueryPlan {
    let mut plan = QueryPlan::scan("ROOT");
    for s in 0..satellites {
        let rel = format!("S{s}");
        let key = format!("{rel}.K");
        let step = if outer_mask & (1 << s) != 0 {
            JoinStep::outer(&rel, &["ROOT.K"], &[key.as_str()])
        } else {
            JoinStep::inner(&rel, &["ROOT.K"], &[key.as_str()])
        };
        plan = plan.join(step);
    }
    if filter {
        // Meaningful under outer joins: drops the null-padded rows again.
        plan = plan.filter(Predicate::not_null("S0.V0"));
    }
    plan
}

/// The whole chain walked from its root; bit `d` of `outer_mask` picks
/// outer/inner for the step onto `C{d}`.
fn chain_plan(depth: usize, outer_mask: u8, filter: bool) -> QueryPlan {
    let mut plan = QueryPlan::scan("C0");
    for d in 1..depth {
        let rel = format!("C{d}");
        let left = format!("C{}.K", d - 1);
        let right = format!("{rel}.K");
        let step = if outer_mask & (1 << d) != 0 {
            JoinStep::outer(&rel, &[left.as_str()], &[right.as_str()])
        } else {
            JoinStep::inner(&rel, &[left.as_str()], &[right.as_str()])
        };
        plan = plan.join(step);
    }
    if filter {
        plan = plan.filter(Predicate::not_null("C1.V0"));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_execution_matches_serial_on_random_instances(
        star in any::<bool>(),
        width in 1usize..4,
        non_key_attrs in 1usize..3,
        outer_mask in any::<u8>(),
        filter in any::<bool>(),
        rows in 1usize..50,
        coverage in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let (schema, plan) = if star {
            let spec = StarSpec { satellites: width, non_key_attrs, externals: 0 };
            (star_schema(&spec), star_plan(width, outer_mask, filter))
        } else {
            let depth = width + 1; // chains need >= 2 schemes
            let spec = ChainSpec { depth, non_key_attrs };
            (chain_schema(&spec), chain_plan(depth, outer_mask, filter))
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage },
            &mut rng,
        ).expect("state");
        let mut db = Database::new(schema, DbmsProfile::ideal()).expect("database");
        db.load_state(&state).expect("load");

        // Reference: the pre-optimizer behavior — serial, index-nested-loop
        // only (`usize::MAX` disables hash joins).
        db.configure(db.config().parallelism(1));
        db.configure(db.config().hash_join_threshold(usize::MAX));
        let (ref_rel, _, ref_trace) = db.execute_traced(&plan).expect("reference");

        for threshold in [0usize, 64, usize::MAX] {
            db.configure(db.config().hash_join_threshold(threshold));
            let mut strategy_stats = None;
            for morsel_rows in [1usize, 7, 64] {
                db.configure(db.config().morsel_rows(morsel_rows));
                for workers in 1usize..=4 {
                    db.configure(db.config().parallelism(workers));
                    let (rel, stats, trace) = db.execute_traced(&plan).expect("query");

                    // Byte-identical result, whatever the configuration.
                    prop_assert_eq!(
                        &rel, &ref_rel,
                        "threshold={} morsel={} workers={}",
                        threshold, morsel_rows, workers
                    );
                    // The trace reconstructs the stats exactly.
                    prop_assert_eq!(trace.totals(), stats.clone());
                    prop_assert_eq!(stats.rows_output, rel.len() as u64);
                    prop_assert_eq!(
                        trace.ops.last().expect("ops nonempty").stats.rows_out,
                        rel.len() as u64
                    );
                    // Operator row counts are physical facts, independent
                    // of morsel size and worker count (strategy may differ
                    // from the reference, row flow may not).
                    prop_assert_eq!(trace.ops.len(), ref_trace.ops.len());
                    for (op, ref_op) in trace.ops.iter().zip(&ref_trace.ops) {
                        prop_assert_eq!(op.stats.rows_in, ref_op.stats.rows_in);
                        prop_assert_eq!(op.stats.rows_out, ref_op.stats.rows_out);
                    }
                    // Cost counters depend only on the strategy: identical
                    // across morsel sizes and worker counts (the morsel
                    // count itself varies with the morsel size, so it is
                    // masked out of the comparison).
                    let mut s = stats;
                    s.morsels = 0;
                    match &strategy_stats {
                        None => strategy_stats = Some(s),
                        Some(first) => prop_assert_eq!(&s, first),
                    }
                }
            }
        }
    }
}
