//! Integration coverage for the batched-DML API: deferred inclusion
//! dependencies make statement order inside a batch irrelevant, a failed
//! batch leaves no trace, and profiles without the capability fall back
//! to immediate (still atomic) checking.

use relmerge::engine::{Database, DbmsProfile, Statement};
use relmerge::relational::{
    Attribute, Domain, InclusionDep, NullConstraint, RelationScheme, RelationalSchema, Tuple, Value,
};

/// PARENT(P.K) ← CHILD(C.K, C.FK) with CHILD[C.FK] ⊆ PARENT[P.K].
fn parent_child_schema() -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new("PARENT", vec![Attribute::new("P.K", Domain::Int)], &["P.K"]).unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "CHILD",
            vec![
                Attribute::new("C.K", Domain::Int),
                Attribute::new("C.FK", Domain::Int),
            ],
            &["C.K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("PARENT", &["P.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("CHILD", &["C.K", "C.FK"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("CHILD", &["C.FK"], "PARENT", &["P.K"]))
        .unwrap();
    rs
}

/// Two relations referencing each other: no insertion order is valid one
/// statement at a time, so only a deferred batch can populate them.
fn cyclic_schema() -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    for (name, k, fk) in [("A", "A.K", "A.FK"), ("B", "B.K", "B.FK")] {
        rs.add_scheme(
            RelationScheme::new(
                name,
                vec![
                    Attribute::new(k, Domain::Int),
                    Attribute::new(fk, Domain::Int),
                ],
                &[k],
            )
            .unwrap(),
        )
        .unwrap();
        rs.add_null_constraint(NullConstraint::nna(name, &[k, fk]))
            .unwrap();
    }
    rs.add_ind(InclusionDep::new("A", &["A.FK"], "B", &["B.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("B", &["B.FK"], "A", &["A.K"]))
        .unwrap();
    rs
}

fn row(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
}

#[test]
fn child_before_parent_commits_under_deferred_checking() {
    let mut db = Database::new(parent_child_schema(), DbmsProfile::ideal()).unwrap();

    // One statement at a time the child is an orphan...
    assert!(db.insert("CHILD", row(&[1, 10])).is_err());

    // ...but a deferred batch validates at commit, when the parent exists.
    let out = db
        .apply_batch(&[
            Statement::insert("CHILD", row(&[1, 10])),
            Statement::insert("PARENT", row(&[10])),
        ])
        .unwrap();
    assert!(out.deferred);
    assert_eq!(out.applied(), 2);
    assert_eq!(
        db.get_by_key("CHILD", &row(&[1])).unwrap(),
        Some(row(&[1, 10]))
    );
}

#[test]
fn violating_batch_rolls_back_fully() {
    let mut db = Database::new(parent_child_schema(), DbmsProfile::ideal()).unwrap();
    db.insert("PARENT", row(&[10])).unwrap();
    let before = db.snapshot().unwrap();

    // Statement 1 dangles (no PARENT 99), so commit-time validation fails.
    let err = db
        .apply_batch(&[
            Statement::insert("CHILD", row(&[1, 10])),
            Statement::insert("CHILD", row(&[2, 99])),
        ])
        .unwrap_err();
    assert_eq!(err.statement_index(), Some(1), "{err}");

    // State AND indexes are exactly as before the attempt.
    assert_eq!(db.snapshot().unwrap(), before);
    assert_eq!(db.get_by_key("CHILD", &row(&[1])).unwrap(), None);
    assert!(
        db.insert("CHILD", row(&[1, 10])).unwrap(),
        "index still live"
    );
}

#[test]
fn cyclic_references_need_a_batch() {
    let mut db = Database::new(cyclic_schema(), DbmsProfile::ideal()).unwrap();

    // Neither row can go first on its own.
    assert!(db.insert("A", row(&[1, 2])).is_err());
    assert!(db.insert("B", row(&[2, 1])).is_err());

    let out = db
        .apply_batch(&[
            Statement::insert("A", row(&[1, 2])),
            Statement::insert("B", row(&[2, 1])),
        ])
        .unwrap();
    assert_eq!(out.applied(), 2);
    assert_eq!(db.get_by_key("A", &row(&[1])).unwrap(), Some(row(&[1, 2])));
    assert_eq!(db.get_by_key("B", &row(&[2])).unwrap(), Some(row(&[2, 1])));
}

#[test]
fn profiles_without_the_capability_check_immediately_but_stay_atomic() {
    let mut db = Database::new(parent_child_schema(), DbmsProfile::db2()).unwrap();
    assert!(!db.profile().deferred_checking);

    // Child-before-parent fails at the offending statement...
    let err = db
        .apply_batch(&[
            Statement::insert("CHILD", row(&[1, 10])),
            Statement::insert("PARENT", row(&[10])),
        ])
        .unwrap_err();
    assert_eq!(err.statement_index(), Some(0), "{err}");
    assert_eq!(db.get_by_key("PARENT", &row(&[10])).unwrap(), None);

    // ...while the dependency-ordered batch commits, un-deferred.
    let out = db
        .apply_batch(&[
            Statement::insert("PARENT", row(&[10])),
            Statement::insert("CHILD", row(&[1, 10])),
        ])
        .unwrap();
    assert!(!out.deferred);
    assert_eq!(out.deferred_checks, 0);
    assert_eq!(out.applied(), 2);
}
