//! Whole-system property test for the online migration path: for a random
//! star schema, a random consistent state, and a random tolerated DML
//! history, `Database::migrate` must land the live database byte-identical
//! — state and per-query `QueryStats`, at every worker count — to a fresh
//! database built on the merged schema from the η-mapped state; capacity
//! must be preserved (Propositions 4.1/4.2); and every injected migration
//! fault must abort with a typed error, verify clean, and roll back
//! byte-identical to the pre-migration snapshot without poisoning the
//! database for a later, clean migration.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::{check_both, check_proposition_4_1, Merge, Merged};
use relmerge::engine::fault::site;
use relmerge::engine::{Database, DbmsProfile, FaultMode, FaultPlan, QueryPlan, Statement};
use relmerge::relational::{Error, Tuple, Value};
use relmerge::workload::{consistent_state, star_merge_set, star_schema, StarSpec, StateSpec};

/// One step of the random DML history. Every field is interpreted
/// modulo the generated schema's actual shape, and statements the
/// constraints reject are simply skipped — rejection is part of the
/// randomness, not a failure.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert a fresh ROOT row (keys drawn from a disjoint range).
    InsertRoot(i64),
    /// Insert a satellite row keyed by an existing-or-not root key.
    InsertSat(usize, i64),
    /// Delete a satellite row by key (no-op when absent).
    DeleteSat(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..32i64).prop_map(|k| Op::InsertRoot(10_000 + k)),
        (any::<usize>(), 0..64i64).prop_map(|(s, k)| Op::InsertSat(s, k)),
        (any::<usize>(), 0..64i64).prop_map(|(s, k)| Op::DeleteSat(s, k)),
    ]
}

/// Builds the live database: schema + generated state + the DML history,
/// applied one tolerated statement at a time.
fn build_live(
    schema: &relmerge::relational::RelationalSchema,
    state: &relmerge::relational::DatabaseState,
    history: &[Op],
    spec: &StarSpec,
    root_rows: usize,
) -> Database {
    let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).unwrap();
    db.load_state(state).unwrap();
    for op in history {
        let stmt = match *op {
            Op::InsertRoot(k) => Statement::insert("ROOT", Tuple::new([Value::Int(k)])),
            Op::InsertSat(s, k) => {
                let s = s % spec.satellites;
                // Map into (roughly) the generated root-key range so some
                // inserts land and some violate the IND or the key.
                let key = 1 + (k % (2 * root_rows as i64));
                let mut vals = vec![Value::Int(key)];
                for j in 0..spec.non_key_attrs {
                    vals.push(Value::Int(key + 100 + j as i64));
                }
                Statement::insert(format!("S{s}"), Tuple::new(vals))
            }
            Op::DeleteSat(s, k) => {
                let s = s % spec.satellites;
                let key = 1 + (k % (2 * root_rows as i64));
                Statement::delete(format!("S{s}"), Tuple::new([Value::Int(key)]))
            }
        };
        let _ = db.apply_batch(&[stmt]);
    }
    db
}

/// The replay queries both sides must answer identically: a full scan of
/// the merged relation and point lookups across present and absent keys.
fn replay_queries(root_rows: usize) -> Vec<QueryPlan> {
    let mut qs = vec![QueryPlan::scan("M")];
    for k in [1, 2, root_rows as i64, 10_005, 999_999] {
        qs.push(QueryPlan::lookup(
            "M",
            &["ROOT.K"],
            Tuple::new([Value::Int(k)]),
        ));
    }
    qs
}

/// Plans the full star merge with every removable key removed.
fn star_plan(schema: &relmerge::relational::RelationalSchema, spec: &StarSpec) -> Merged {
    let members = star_merge_set(spec);
    let refs: Vec<&str> = members.iter().map(String::as_str).collect();
    let mut plan = Merge::plan(schema, &refs, "M").unwrap();
    plan.remove_all_removable().unwrap();
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn migrate_then_replay_is_byte_identical(
        satellites in 1usize..=4,
        non_key_attrs in 0usize..=2,
        root_rows in 4usize..=20,
        coverage in 0.2f64..=1.0,
        seed in 0u64..1_000,
        history in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let spec = StarSpec { satellites, non_key_attrs, externals: 0 };
        let schema = star_schema(&spec);
        let mut rng = StdRng::seed_from_u64(seed);
        let state = consistent_state(&schema, &StateSpec { root_rows, coverage }, &mut rng).unwrap();
        let plan = star_plan(&schema, &spec);

        let mut live = build_live(&schema, &state, &history, &spec, root_rows);
        let pre = live.snapshot().unwrap();
        prop_assert!(check_proposition_4_1(&plan, &pre).unwrap());

        live.migrate(&plan).unwrap();
        let post = live.snapshot().unwrap();
        prop_assert!(check_both(&plan, &pre, &post).unwrap().holds());

        // The fresh twin: a database born on the merged schema, loaded
        // with the η-mapped state. The migrated live database must be
        // indistinguishable from it.
        let mut fresh = Database::new(plan.schema().clone(), DbmsProfile::ideal()).unwrap();
        fresh.load_state(&plan.apply(&pre).unwrap()).unwrap();
        prop_assert_eq!(&post, &fresh.snapshot().unwrap());
        prop_assert!(live.verify_integrity().is_clean());

        for w in [1usize, 2, 4] {
            live.configure(live.config().parallelism(w));
            fresh.configure(fresh.config().parallelism(w));
            for q in replay_queries(root_rows) {
                let (r_live, s_live) = live.execute(&q).unwrap();
                let (r_fresh, s_fresh) = fresh.execute(&q).unwrap();
                prop_assert_eq!(&r_live, &r_fresh, "workers {} plan {:?}", w, q);
                prop_assert_eq!(s_live, s_fresh, "workers {} plan {:?}", w, q);
            }
        }
    }

    #[test]
    fn injected_migration_faults_roll_back_byte_identical(
        satellites in 1usize..=3,
        non_key_attrs in 0usize..=2,
        root_rows in 4usize..=16,
        coverage in 0.2f64..=1.0,
        seed in 0u64..1_000,
        history in proptest::collection::vec(op_strategy(), 0..16),
    ) {
        let spec = StarSpec { satellites, non_key_attrs, externals: 0 };
        let schema = star_schema(&spec);
        let mut rng = StdRng::seed_from_u64(seed);
        let state = consistent_state(&schema, &StateSpec { root_rows, coverage }, &mut rng).unwrap();
        let plan = star_plan(&schema, &spec);

        for &s in site::MIGRATION {
            for mode in [FaultMode::Error, FaultMode::Panic] {
                let mut db = build_live(&schema, &state, &history, &spec, root_rows);
                let pre = db.snapshot().unwrap();
                let armed = db.set_fault_plan(FaultPlan::new().fail_at(s, 0, mode));
                let outcome = db.migrate(&plan);
                prop_assert!(armed.total_fired() > 0, "site {} must arrive", s);
                prop_assert!(
                    matches!(outcome, Err(Error::Injected { .. } | Error::ExecutionPanic { .. })),
                    "site {} mode {:?}: {:?}", s, mode, outcome
                );
                db.clear_fault_plan();
                prop_assert!(db.verify_integrity().is_clean());
                prop_assert_eq!(&db.snapshot().unwrap(), &pre, "site {} mode {:?}", s, mode);
                // The aborted database is not poisoned: the same migration
                // succeeds once the fault is gone, and matches the twin.
                db.migrate(&plan).unwrap();
                let mut fresh = Database::new(plan.schema().clone(), DbmsProfile::ideal()).unwrap();
                fresh.load_state(&plan.apply(&pre).unwrap()).unwrap();
                prop_assert_eq!(&db.snapshot().unwrap(), &fresh.snapshot().unwrap());
            }
        }
    }
}
