//! Soak test: a long seeded DML stream against both the unmerged and the
//! merged university databases. Every accepted statement must leave the
//! database consistent; acceptance rates must be sane; and the merged
//! database's contents must stay reconstructible.

use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge::core::Merge;
use relmerge::engine::{Database, DbmsProfile};
use relmerge::relational::{Tuple, Value};
use relmerge::workload::{generate_university, UniversitySpec};

#[test]
fn dml_soak_unmerged_and_merged() {
    let mut rng = StdRng::seed_from_u64(99);
    let u = generate_university(
        &UniversitySpec {
            courses: 300,
            departments: 10,
            persons: 200,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .unwrap();
    let mut m = Merge::plan(
        &u.schema,
        &["COURSE", "OFFER", "TEACH", "ASSIST"],
        "COURSE_M",
    )
    .unwrap();
    m.remove_all_removable().unwrap();

    let mut unmerged = Database::new(u.schema.clone(), DbmsProfile::ideal()).unwrap();
    unmerged.load_state(&u.state).unwrap();
    let mut merged = Database::new(m.schema().clone(), DbmsProfile::ideal()).unwrap();
    merged.load_state(&m.apply(&u.state).unwrap()).unwrap();

    let mut accepted = (0u32, 0u32);
    let mut rejected = (0u32, 0u32);
    const OPS: usize = 4_000;
    for i in 0..OPS {
        let course = rng.gen_range(0..500i64);
        let dept = Value::text(format!("dept{}", rng.gen_range(0..12)));
        let person = Value::Int(10_000 + rng.gen_range(0..250));
        match rng.gen_range(0..5) {
            // Insert a full bundle into the unmerged database...
            0 => {
                let ok = unmerged
                    .insert("COURSE", Tuple::new([Value::Int(course)]))
                    .is_ok()
                    && unmerged
                        .insert("OFFER", Tuple::new([Value::Int(course), dept.clone()]))
                        .is_ok();
                if ok {
                    accepted.0 += 1;
                } else {
                    rejected.0 += 1;
                }
            }
            // ...or a merged tuple with random group presence.
            1 => {
                let offered = rng.gen_bool(0.8);
                let taught = offered && rng.gen_bool(0.5);
                let t = Tuple::new([
                    Value::Int(course),
                    if offered { dept.clone() } else { Value::Null },
                    if taught { person.clone() } else { Value::Null },
                    Value::Null,
                ]);
                if merged.insert("COURSE_M", t).is_ok() {
                    accepted.1 += 1;
                } else {
                    rejected.1 += 1;
                }
            }
            // Deletes on both.
            2 => {
                let _ = unmerged.delete_by_key("TEACH", &Tuple::new([Value::Int(course)]));
                let _ = merged.delete_by_key("COURSE_M", &Tuple::new([Value::Int(course)]));
            }
            // Violations on purpose: dangling references, null keys.
            3 => {
                assert!(unmerged
                    .insert("OFFER", Tuple::new([Value::Int(9_999_999), dept.clone()]))
                    .is_err());
                assert!(merged
                    .insert(
                        "COURSE_M",
                        Tuple::new([Value::Null, Value::Null, Value::Null, Value::Null]),
                    )
                    .is_err());
            }
            // Updates through transactions on the merged database.
            _ => {
                let key = Tuple::new([Value::Int(course)]);
                if let Some(existing) = merged.get_by_key("COURSE_M", &key).unwrap() {
                    let updated = existing.with(1, dept.clone());
                    let _ = merged.transaction(|tx| tx.update_by_key("COURSE_M", &key, updated));
                }
            }
        }
        // Periodic full-consistency audit (cheap at this scale).
        if i % 500 == 0 {
            let snap = unmerged.snapshot().unwrap();
            assert!(snap.is_consistent(&u.schema).unwrap(), "op {i} unmerged");
            let msnap = merged.snapshot().unwrap();
            assert!(msnap.is_consistent(m.schema()).unwrap(), "op {i} merged");
            // The merged contents always reconstruct to a consistent
            // original-schema state.
            let back = m.invert(&msnap).unwrap();
            // (The back-mapped state needs the non-merged relations from
            // the merged snapshot, which invert carries over.)
            assert!(back.is_consistent(&u.schema).unwrap(), "op {i} invert");
        }
    }
    // Sanity on the mix: plenty of accepted and rejected operations.
    assert!(accepted.0 > 50, "unmerged accepted {accepted:?}");
    assert!(accepted.1 > 100, "merged accepted {accepted:?}");
    assert!(rejected.0 > 50, "unmerged rejected {rejected:?}");

    // Final audits.
    let snap = unmerged.snapshot().unwrap();
    assert!(snap.is_consistent(&u.schema).unwrap());
    let msnap = merged.snapshot().unwrap();
    assert!(msnap.is_consistent(m.schema()).unwrap());
    let stats = merged.stats();
    assert!(stats.total_checks() > 0);
    assert!(stats.rejected > 0);
}
