//! Edge-case sweep across the public API: degenerate schemas, synthetic
//! key-relations under removal, empty states, and the merge of an entire
//! schema.

use relmerge::core::{check_forward, Merge, NotRemovable};
use relmerge::relational::{
    Attribute, DatabaseState, Domain, InclusionDep, NullConstraint, RelationScheme,
    RelationalSchema, Tuple, Value,
};

fn attr(name: &str) -> Attribute {
    Attribute::new(name, Domain::Int)
}

fn nna_all(rs: &mut RelationalSchema) {
    let pairs: Vec<(String, Vec<String>)> = rs
        .schemes()
        .iter()
        .map(|s| {
            (
                s.name().to_owned(),
                s.attr_names().iter().map(|a| (*a).to_owned()).collect(),
            )
        })
        .collect();
    for (name, attrs) in pairs {
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        rs.add_null_constraint(NullConstraint::nna(&name, &refs))
            .unwrap();
    }
}

/// Removal on a *synthetic*-key merge: the part-null constraint is
/// projected, total-equality dropped, and the round trip still holds.
#[test]
fn remove_under_synthetic_key_relation() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new("OFFER", vec![attr("O.CN"), attr("O.DN")], &["O.CN"]).unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new("TEACH", vec![attr("T.CN"), attr("T.FN")], &["T.CN"]).unwrap(),
    )
    .unwrap();
    nna_all(&mut rs);
    let mut m =
        Merge::plan_with_synthetic_key(&rs, &["OFFER", "TEACH"], "ASSIGN", &["CN"]).unwrap();
    // Both member keys are removable (no external references).
    let removed = m.remove_all_removable().unwrap();
    assert_eq!(removed.len(), 2);
    assert_eq!(m.merged_scheme().attr_names(), ["CN", "O.DN", "T.FN"]);
    // The part-null constraint survives, projected onto the survivors.
    let cons = m.generated_null_constraints();
    assert!(cons.contains(&&NullConstraint::pn("ASSIGN", &[&["O.DN"], &["T.FN"]])));
    // No total-equality constraints remain.
    assert!(!cons
        .iter()
        .any(|c| matches!(c, NullConstraint::TotalEquality { .. })));

    // Round trip with overlapping and disjoint keys.
    let mut st = DatabaseState::empty_for(&rs).unwrap();
    st.insert("OFFER", Tuple::new([Value::Int(1), Value::Int(10)]))
        .unwrap();
    st.insert("OFFER", Tuple::new([Value::Int(2), Value::Int(20)]))
        .unwrap();
    st.insert("TEACH", Tuple::new([Value::Int(2), Value::Int(200)]))
        .unwrap();
    st.insert("TEACH", Tuple::new([Value::Int(3), Value::Int(300)]))
        .unwrap();
    let report = check_forward(&m, &st).unwrap();
    assert!(report.holds(), "{report:?}");
}

/// Merging the *entire* schema leaves a single relation-scheme and no
/// inclusion dependencies.
#[test]
fn merge_everything() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("A", vec![attr("A.K")], &["A.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("B", vec![attr("B.K"), attr("B.V")], &["B.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("C", vec![attr("C.K"), attr("C.V")], &["C.K"]).unwrap())
        .unwrap();
    nna_all(&mut rs);
    rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("C", &["C.K"], "A", &["A.K"]))
        .unwrap();
    let mut m = Merge::plan(&rs, &["A", "B", "C"], "ALL").unwrap();
    m.remove_all_removable().unwrap();
    assert_eq!(m.schema().schemes().len(), 1);
    assert!(m.schema().inds().is_empty());
    assert!(m.schema().is_bcnf());
}

/// Empty states round-trip through every mapping.
#[test]
fn empty_states_round_trip() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("A", vec![attr("A.K")], &["A.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("B", vec![attr("B.K"), attr("B.V")], &["B.K"]).unwrap())
        .unwrap();
    nna_all(&mut rs);
    rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
        .unwrap();
    let mut m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
    m.remove_all_removable().unwrap();
    let empty = DatabaseState::empty_for(&rs).unwrap();
    let image = m.apply(&empty).unwrap();
    assert_eq!(image.relation("M").unwrap().len(), 0);
    assert!(image.is_consistent(m.schema()).unwrap());
    assert_eq!(m.invert(&image).unwrap(), empty);
}

/// A merged scheme cannot be merged again while it carries non-NNA null
/// constraints (Definition 4.1's simplifying assumption gates re-merging).
#[test]
fn remerging_gated_by_nna_assumption() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("A", vec![attr("A.K")], &["A.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("B", vec![attr("B.K"), attr("B.V")], &["B.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("X", vec![attr("X.K")], &["X.K"]).unwrap())
        .unwrap();
    nna_all(&mut rs);
    rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("A", &["A.K"], "X", &["X.K"]))
        .unwrap();
    let m = Merge::plan(&rs, &["A", "B"], "AB").unwrap();
    // AB's B-part is nullable (and null-synchronized): merging AB with X
    // must be rejected — the first violated gate is the missing
    // nulls-not-allowed coverage on B.K.
    let err = Merge::plan(m.schema(), &["AB", "X"], "ABX").unwrap_err();
    assert!(err.to_string().contains("nulls-not-allowed"), "{err}");
    // Even after full removal, the B-part stays nullable, so the gate
    // still holds: merged schemes are only re-mergeable when every
    // attribute is non-null.
    let mut m2 = Merge::plan(&rs, &["A", "B"], "AB").unwrap();
    m2.remove_all_removable().unwrap();
    assert!(Merge::plan(m2.schema(), &["AB", "X"], "ABX").is_err());

    // With *total participation* (reverse key-to-key dependency) and the
    // strengthening option, the merged scheme is fully NNA — and then
    // re-merging is legal.
    let mut rs2 = rs.clone();
    rs2.add_ind(InclusionDep::new("A", &["A.K"], "B", &["B.K"]))
        .unwrap();
    let options = relmerge::core::MergeOptions {
        strengthen_total_participation: true,
        ..Default::default()
    };
    let mut m3 = Merge::plan_with_options(&rs2, &["A", "B"], "AB", &options).unwrap();
    m3.remove_all_removable().unwrap();
    assert!(m3.generated_null_constraints().iter().all(|c| c.is_nna()));
    let second = Merge::plan(m3.schema(), &["AB", "X"], "ABX");
    assert!(second.is_ok(), "{second:?}");
}

/// Unicode scheme and attribute names flow through the whole pipeline.
#[test]
fn unicode_names() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new("KÜRS", vec![Attribute::new("K.NR", Domain::Int)], &["K.NR"]).unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "ANGEBOT",
            vec![
                Attribute::new("Å.NR", Domain::Int),
                Attribute::new("Å.FACH", Domain::Text),
            ],
            &["Å.NR"],
        )
        .unwrap(),
    )
    .unwrap();
    nna_all(&mut rs);
    rs.add_ind(InclusionDep::new("ANGEBOT", &["Å.NR"], "KÜRS", &["K.NR"]))
        .unwrap();
    let mut m = Merge::plan(&rs, &["KÜRS", "ANGEBOT"], "KÜRS_M").unwrap();
    m.remove_all_removable().unwrap();
    let mut st = DatabaseState::empty_for(&rs).unwrap();
    st.insert("KÜRS", Tuple::new([Value::Int(1)])).unwrap();
    st.insert("ANGEBOT", Tuple::new([Value::Int(1), Value::text("maß")]))
        .unwrap();
    let report = check_forward(&m, &st).unwrap();
    assert!(report.holds());
}

/// Removability diagnostics name the precise failing condition.
#[test]
fn removability_diagnostics() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("A", vec![attr("A.K")], &["A.K"]).unwrap())
        .unwrap();
    rs.add_scheme(RelationScheme::new("B", vec![attr("B.K")], &["B.K"]).unwrap())
        .unwrap();
    nna_all(&mut rs);
    rs.add_ind(InclusionDep::new("B", &["B.K"], "A", &["A.K"]))
        .unwrap();
    let m = Merge::plan(&rs, &["A", "B"], "M").unwrap();
    assert_eq!(m.removable("A"), Err(NotRemovable::IsKeyRelation));
    assert_eq!(m.removable("B"), Err(NotRemovable::NothingLeft));
    assert_eq!(
        m.removable("GHOST"),
        Err(NotRemovable::NoSuchGroup("GHOST".to_owned()))
    );
    // Every variant has a human-readable rendering.
    for err in [
        NotRemovable::IsKeyRelation,
        NotRemovable::NothingLeft,
        NotRemovable::AlreadyRemoved,
        NotRemovable::NoSuchGroup("X".into()),
        NotRemovable::ExternalReference("i".into()),
        NotRemovable::ForeignKeyNotShared("d".into()),
        NotRemovable::OverlapsForeignKey("i".into()),
    ] {
        assert!(!err.to_string().is_empty());
    }
}
