//! End-to-end integration: EER model → translation → advisor-driven merge
//! → DDL emission → engine hosting, across DBMS profiles.

use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::{Advisor, AdvisorConfig};
use relmerge::ddl::{generate, run_sdt, Dialect, SdtOption};
use relmerge::eer::{figures, translate};
use relmerge::engine::{Database, DbmsProfile, JoinStep, QueryPlan};
use relmerge::relational::{Tuple, Value};
use relmerge::workload::{generate_university, UniversitySpec};

/// The whole SDT matrix: both options on every dialect, for the university
/// EER schema — everything deployable, nothing silently dropped.
#[test]
fn sdt_matrix_university() {
    let eer = figures::fig7_eer();
    for dialect in Dialect::ALL {
        for option in [SdtOption::OneToOne, SdtOption::Merged] {
            let out = run_sdt(&eer, option, dialect).unwrap();
            assert!(
                out.script.unsupported().is_empty(),
                "{dialect} {option:?}: {:?}",
                out.script
                    .unsupported()
                    .iter()
                    .map(|s| s.sql())
                    .collect::<Vec<_>>()
            );
            assert!(out.schema.is_bcnf(), "{dialect} {option:?} not BCNF");
            if option == SdtOption::Merged {
                assert!(out.scheme_count.1 <= out.scheme_count.0);
            }
        }
    }
}

/// The advisor's output for a dialect is hostable by the engine profile
/// modelling the same system.
#[test]
fn advisor_output_hostable() {
    let schema = translate(&figures::fig7_eer()).unwrap();
    let cases: [(AdvisorConfig, DbmsProfile); 3] = [
        (AdvisorConfig::declarative_only(), DbmsProfile::db2()),
        (
            relmerge::ddl::advisor_config_for(Dialect::Sybase40),
            DbmsProfile::sybase40(),
        ),
        (
            relmerge::ddl::advisor_config_for(Dialect::Ingres63),
            DbmsProfile::ingres63(),
        ),
    ];
    for (config, profile) in cases {
        let (merged_schema, applied) = Advisor::new(config).greedy(&schema).unwrap();
        let db = Database::new(merged_schema.clone(), profile.clone());
        assert!(
            db.is_ok(),
            "{} cannot host the advisor output after {} merges: {:?}",
            profile.name,
            applied.len(),
            profile.hosting_report(&merged_schema)
        );
    }
}

/// A merged database answers the same logical query as the unmerged one,
/// for every offered course.
#[test]
fn merged_and_unmerged_agree_on_all_courses() {
    let mut rng = StdRng::seed_from_u64(77);
    let u = generate_university(
        &UniversitySpec {
            courses: 150,
            ..UniversitySpec::default()
        },
        &mut rng,
    )
    .unwrap();
    let mut m = relmerge::core::Merge::plan(
        &u.schema,
        &["COURSE", "OFFER", "TEACH", "ASSIST"],
        "COURSE_M",
    )
    .unwrap();
    m.remove_all_removable().unwrap();
    let mut unmerged = Database::new(u.schema.clone(), DbmsProfile::ideal()).unwrap();
    unmerged.load_state(&u.state).unwrap();
    let merged_state = m.apply(&u.state).unwrap();
    let mut merged = Database::new(m.schema().clone(), DbmsProfile::ideal()).unwrap();
    merged.load_state(&merged_state).unwrap();

    for nr in 0..150i64 {
        let key = Tuple::new([Value::Int(nr)]);
        let unmerged_plan = QueryPlan::lookup("COURSE", &["C.NR"], key.clone())
            .join(JoinStep::outer("OFFER", &["C.NR"], &["O.C.NR"]))
            .join(JoinStep::outer("TEACH", &["O.C.NR"], &["T.C.NR"]))
            .join(JoinStep::outer("ASSIST", &["O.C.NR"], &["A.C.NR"]))
            .select(&["C.NR", "O.D.NAME", "T.F.SSN", "A.S.SSN"]);
        let merged_plan = QueryPlan::lookup("COURSE_M", &["C.NR"], key);
        let (r1, _) = unmerged.execute(&unmerged_plan).unwrap();
        let (r2, _) = merged.execute(&merged_plan).unwrap();
        assert!(
            r1.set_eq_unordered(&r2),
            "course {nr}: unmerged {r1} vs merged {r2}"
        );
    }
}

/// DDL for the merged university schema deploys the right mechanism per
/// dialect, and DB2 flags what it cannot maintain.
#[test]
fn ddl_mechanisms_per_dialect() {
    let schema = translate(&figures::fig7_eer()).unwrap();
    let mut m =
        relmerge::core::Merge::plan(&schema, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_M")
            .unwrap();
    m.remove_all_removable().unwrap();
    // The merged schema carries two general null constraints.
    let general = m
        .generated_null_constraints()
        .iter()
        .filter(|c| !c.is_nna())
        .count();
    assert_eq!(general, 2);

    let db2 = generate(m.schema(), Dialect::Db2).unwrap();
    assert_eq!(db2.unsupported().len(), general);
    let sybase = generate(m.schema(), Dialect::Sybase40).unwrap();
    assert!(sybase.unsupported().is_empty());
    assert!(sybase.procedural_count() >= general);
    let ingres = generate(m.schema(), Dialect::Ingres63).unwrap();
    assert!(ingres.unsupported().is_empty());
    let sql92 = generate(m.schema(), Dialect::Sql92).unwrap();
    assert!(sql92.unsupported().is_empty());
    assert_eq!(sql92.procedural_count(), 0);
    assert_eq!(sql92.render().matches("ADD CONSTRAINT").count(), general);
}

/// The engine rejects exactly the statements that would break the merged
/// schema's generated constraints.
#[test]
fn merged_constraints_enforced_by_engine() {
    let schema = translate(&figures::fig7_eer()).unwrap();
    let mut m =
        relmerge::core::Merge::plan(&schema, &["COURSE", "OFFER", "TEACH", "ASSIST"], "COURSE_M")
            .unwrap();
    m.remove_all_removable().unwrap();
    let mut db = Database::new(m.schema().clone(), DbmsProfile::sybase40()).unwrap();
    db.insert("DEPARTMENT", Tuple::new([Value::text("cs")]))
        .unwrap();
    db.insert("PERSON", Tuple::new([Value::Int(1)])).unwrap();
    db.insert("FACULTY", Tuple::new([Value::Int(1)])).unwrap();
    // A course with no offer: nulls everywhere but the key — fine.
    db.insert(
        "COURSE_M",
        Tuple::new([Value::Int(10), Value::Null, Value::Null, Value::Null]),
    )
    .unwrap();
    // An offered, taught course — fine.
    db.insert(
        "COURSE_M",
        Tuple::new([
            Value::Int(11),
            Value::text("cs"),
            Value::Int(1),
            Value::Null,
        ]),
    )
    .unwrap();
    // A taught course with no offer violates T.F.SSN ⊑ O.D.NAME
    // (the Figure 6 constraint).
    let err = db
        .insert(
            "COURSE_M",
            Tuple::new([Value::Int(12), Value::Null, Value::Int(1), Value::Null]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("T.F.SSN"));
    // A dangling faculty reference is caught through the FK trigger.
    assert!(db
        .insert(
            "COURSE_M",
            Tuple::new([
                Value::Int(13),
                Value::text("cs"),
                Value::Int(99),
                Value::Null
            ]),
        )
        .is_err());
    // The accepted contents are a consistent state of the merged schema.
    let snapshot = db.snapshot().unwrap();
    assert!(snapshot.is_consistent(m.schema()).unwrap());
}
