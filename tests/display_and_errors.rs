//! Rendering and diagnostics coverage: the paper-notation renderer on the
//! real Figure 3 schema, display of every error and violation form, and
//! the figure-notation round trip through a merge.

use relmerge::eer::{figures, translate};
use relmerge::relational::notation::render_figure;
use relmerge::relational::{
    Attribute, DatabaseState, Domain, Error, InclusionDep, NullConstraint, RelationScheme,
    RelationalSchema, Tuple, Value,
};

/// The notation renderer reproduces Figure 3's layout on the translated
/// university schema.
#[test]
fn figure3_in_paper_notation() {
    let rs = translate(&figures::fig7_eer()).unwrap();
    let text = render_figure(&rs, "Fig. 3. A Relational Schema.");
    assert!(text.starts_with("Fig. 3. A Relational Schema.\n"));
    // Numbered relation-schemes with underlined keys.
    assert!(text.contains("PERSON (_P.SSN_)"), "{text}");
    assert!(text.contains("OFFER (_O.C.NR_, O.D.NAME)"));
    // Numbered dependency section with the paper's entries.
    assert!(text.contains("Inclusion Dependencies"));
    assert!(text.contains("TEACH [T.C.NR] <= OFFER [O.C.NR]"));
    // Numbered null constraints.
    assert!(text.contains("Null Constraints"));
    assert!(text.contains("PERSON: 0 E-> P.SSN"));
    // All eight schemes numbered 1-8.
    for i in 1..=8 {
        assert!(text.contains(&format!("({i}) ")), "missing ({i})");
    }
}

/// The Figure 1(iii) star notation: nullable attributes are starred.
#[test]
fn teorey_schema_stars_nullable_attrs() {
    let t = relmerge::eer::translate_teorey(&figures::fig1_eer()).unwrap();
    let text = render_figure(&t.schema, "Fig. 1(iii).");
    assert!(text.contains("WORKS (_E.SSN_, W.NR*, W.DATE*)"), "{text}");
}

/// Every error variant renders a non-empty, informative message.
#[test]
fn error_messages_are_informative() {
    let errors = [
        Error::UnknownAttribute {
            attribute: "X".into(),
            context: "ctx".into(),
        },
        Error::UnknownScheme("S".into()),
        Error::IncompatibleAttributes { detail: "d".into() },
        Error::DuplicateAttribute("A".into()),
        Error::DuplicateScheme("S".into()),
        Error::TupleMismatch { detail: "d".into() },
        Error::MalformedKey {
            scheme: "S".into(),
            detail: "d".into(),
        },
        Error::MalformedConstraint { detail: "d".into() },
        Error::MissingPrimaryKey("S".into()),
        Error::PreconditionViolated {
            procedure: "P",
            detail: "d".into(),
        },
        Error::StateMismatch { detail: "d".into() },
    ];
    for e in errors {
        let text = e.to_string();
        assert!(text.len() > 5, "{text}");
        // std::error::Error is implemented.
        let _: &dyn std::error::Error = &e;
    }
}

/// Violations print with the offending constraint spelled out.
#[test]
fn violation_messages_name_the_constraint() {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new(
            "R",
            vec![
                Attribute::new("R.K", Domain::Int),
                Attribute::new("R.V", Domain::Int),
            ],
            &["R.K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new("T", vec![Attribute::new("T.K", Domain::Int)], &["T.K"]).unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("R", &["R.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("R", &["R.V"], "T", &["T.K"]))
        .unwrap();
    let mut st = DatabaseState::empty_for(&rs).unwrap();
    // One tuple violating key (dup), NNA, and IND at once.
    st.insert("R", Tuple::new([Value::Null, Value::Int(9)]))
        .unwrap();
    st.insert("R", Tuple::new([Value::Int(1), Value::Int(9)]))
        .unwrap();
    st.insert("R", Tuple::new([Value::Int(1), Value::Int(8)]))
        .unwrap();
    let violations = st.violations(&rs).unwrap();
    let texts: Vec<String> = violations.iter().map(ToString::to_string).collect();
    assert!(
        texts.iter().any(|t| t.contains("key violation on R")),
        "{texts:?}"
    );
    assert!(texts.iter().any(|t| t.contains("0 E-> R.K")), "{texts:?}");
    assert!(
        texts.iter().any(|t| t.contains("R [R.V] <= T [T.K]")),
        "{texts:?}"
    );
}

/// DML errors from the engine display both constraint and schema causes.
#[test]
fn dml_error_display() {
    use relmerge::engine::{Database, DbmsProfile};
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new("R", vec![Attribute::new("R.K", Domain::Int)], &["R.K"]).unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("R", &["R.K"]))
        .unwrap();
    let mut db = Database::new(rs, DbmsProfile::ideal()).unwrap();
    let constraint_err = db.insert("R", Tuple::new([Value::Null])).unwrap_err();
    assert!(constraint_err.to_string().contains("constraint violation"));
    let schema_err = db.insert("NOPE", Tuple::new([Value::Int(1)])).unwrap_err();
    assert!(schema_err.to_string().contains("NOPE"));
    let _: &dyn std::error::Error = &constraint_err;
}

/// The EER display summarizes object-sets, cardinalities, and ISA links.
#[test]
fn eer_display() {
    let text = figures::fig7_eer().to_string();
    assert!(text.contains("PERSON [id: SSN]"));
    assert!(text.contains("OFFER: COURSE(M) -- DEPARTMENT(1)"));
    assert!(text.contains("FACULTY ISA PERSON"));
    let weak = {
        let mut eer = figures::fig1_eer();
        eer.add_entity(
            relmerge::eer::EntitySet::new(
                "DEPENDENT",
                vec![relmerge::eer::EerAttribute::required("NAME", Domain::Text)],
                &["NAME"],
            )
            .weak("EMPLOYEE"),
        );
        eer.to_string()
    };
    assert!(weak.contains("weak(owner=EMPLOYEE)"));
}
