//! The engine's incremental DML enforcement agrees with the declarative
//! whole-state consistency checker: a statement is accepted iff applying it
//! would leave the state consistent.

use proptest::prelude::*;

use relmerge::engine::{Database, DbmsProfile, DmlError};
use relmerge::relational::{
    Attribute, DatabaseState, Domain, InclusionDep, NullConstraint, RelationScheme,
    RelationalSchema, Tuple, Value,
};

/// A merged-shape schema with every constraint class the engine enforces:
/// key, NNA, NS, NE, TE, PN would require a synthetic key-relation — use
/// the post-merge COURSE_M shape plus one reference target.
fn merged_shape_schema() -> RelationalSchema {
    let a = |n: &str| Attribute::new(n, Domain::Int);
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("DEPT", vec![a("D.K")], &["D.K"]).unwrap())
        .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "M",
            vec![a("K"), a("O.K"), a("O.D"), a("T.K"), a("T.F")],
            &["K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("DEPT", &["D.K"])).unwrap();
    rs.add_null_constraint(NullConstraint::nna("M", &["K"])).unwrap();
    rs.add_null_constraint(NullConstraint::ns("M", &["O.K", "O.D"])).unwrap();
    rs.add_null_constraint(NullConstraint::ns("M", &["T.K", "T.F"])).unwrap();
    rs.add_null_constraint(NullConstraint::ne("M", &["T.K", "T.F"], &["O.K", "O.D"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::te("M", &["K"], &["O.K"])).unwrap();
    rs.add_null_constraint(NullConstraint::te("M", &["K"], &["T.K"])).unwrap();
    rs.add_ind(InclusionDep::new("M", &["O.D"], "DEPT", &["D.K"])).unwrap();
    rs
}

/// One random statement.
#[derive(Debug, Clone)]
enum Stmt {
    InsertDept(i64),
    InsertM([Option<i64>; 5]),
    DeleteDept(i64),
    DeleteM(i64),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let small = 0i64..6;
    prop_oneof![
        small.clone().prop_map(Stmt::InsertDept),
        proptest::array::uniform5(proptest::option::of(0i64..6)).prop_map(Stmt::InsertM),
        small.clone().prop_map(Stmt::DeleteDept),
        small.prop_map(Stmt::DeleteM),
    ]
}

fn to_tuple(vals: &[Option<i64>]) -> Tuple {
    Tuple::new(
        vals.iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness + completeness of incremental enforcement: after every
    /// statement the snapshot is consistent, and every rejected insert
    /// would in fact have made the snapshot inconsistent (checked by
    /// replaying it into a copy of the state).
    #[test]
    fn engine_agrees_with_declarative_checker(stmts in proptest::collection::vec(stmt_strategy(), 1..60)) {
        let schema = merged_shape_schema();
        let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).expect("db");
        for stmt in stmts {
            let before = db.snapshot().expect("snapshot");
            let outcome: Result<(), DmlError> = match &stmt {
                Stmt::InsertDept(k) => db.insert("DEPT", Tuple::new([Value::Int(*k)])).map(|_| ()),
                Stmt::InsertM(vals) => db.insert("M", to_tuple(vals)).map(|_| ()),
                Stmt::DeleteDept(k) => db
                    .delete_by_key("DEPT", &Tuple::new([Value::Int(*k)]))
                    .map(|_| ()),
                Stmt::DeleteM(k) => db
                    .delete_by_key("M", &Tuple::new([Value::Int(*k)]))
                    .map(|_| ()),
            };
            let after = db.snapshot().expect("snapshot");
            // Invariant: the live state is always consistent.
            prop_assert!(
                after.is_consistent(&schema).expect("check"),
                "inconsistent after {stmt:?}"
            );
            if outcome.is_err() {
                // The state must be unchanged…
                prop_assert_eq!(&before, &after, "rejected {:?} mutated state", &stmt);
                // …and force-applying the statement must violate something
                // (completeness of the rejection).
                let forced = force_apply(&before, &stmt);
                if let Some(forced) = forced {
                    prop_assert!(
                        !forced.is_consistent(&schema).expect("check"),
                        "{stmt:?} was rejected but would be consistent"
                    );
                }
            }
        }
    }
}

/// Applies a statement to a state copy without any checking. Returns
/// `None` for deletes of absent keys (nothing to force).
fn force_apply(state: &DatabaseState, stmt: &Stmt) -> Option<DatabaseState> {
    let mut s = state.clone();
    match stmt {
        Stmt::InsertDept(k) => {
            s.relation_mut("DEPT")
                .expect("dept")
                .insert(Tuple::new([Value::Int(*k)]))
                .ok()?;
        }
        Stmt::InsertM(vals) => {
            s.relation_mut("M").expect("m").insert(to_tuple(vals)).ok()?;
        }
        Stmt::DeleteDept(k) => {
            let rel = s.relation_mut("DEPT").expect("dept");
            let victim = rel
                .iter()
                .find(|t| t.get(0) == &Value::Int(*k))
                .cloned()?;
            rel.remove(&victim);
        }
        Stmt::DeleteM(k) => {
            let rel = s.relation_mut("M").expect("m");
            let victim = rel
                .iter()
                .find(|t| t.get(0) == &Value::Int(*k))
                .cloned()?;
            rel.remove(&victim);
        }
    }
    Some(s)
}
