//! The engine's incremental DML enforcement agrees with the declarative
//! whole-state consistency checker: a statement is accepted iff applying it
//! would leave the state consistent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::engine::{Database, DbmsProfile, DmlError};
use relmerge::obs;
use relmerge::relational::{
    Attribute, DatabaseState, Domain, InclusionDep, NullConstraint, RelationScheme,
    RelationalSchema, Tuple, Value,
};
use relmerge::workload::{
    generate_university, university_ops, MixSpec, UniversityOp, UniversitySpec,
};

/// A merged-shape schema with every constraint class the engine enforces:
/// key, NNA, NS, NE, TE, PN would require a synthetic key-relation — use
/// the post-merge COURSE_M shape plus one reference target.
fn merged_shape_schema() -> RelationalSchema {
    let a = |n: &str| Attribute::new(n, Domain::Int);
    let mut rs = RelationalSchema::new();
    rs.add_scheme(RelationScheme::new("DEPT", vec![a("D.K")], &["D.K"]).unwrap())
        .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "M",
            vec![a("K"), a("O.K"), a("O.D"), a("T.K"), a("T.F")],
            &["K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("DEPT", &["D.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("M", &["K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::ns("M", &["O.K", "O.D"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::ns("M", &["T.K", "T.F"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::ne("M", &["T.K", "T.F"], &["O.K", "O.D"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::te("M", &["K"], &["O.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::te("M", &["K"], &["T.K"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("M", &["O.D"], "DEPT", &["D.K"]))
        .unwrap();
    rs
}

/// One random statement.
#[derive(Debug, Clone)]
enum Stmt {
    InsertDept(i64),
    InsertM([Option<i64>; 5]),
    DeleteDept(i64),
    DeleteM(i64),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let small = 0i64..6;
    prop_oneof![
        small.clone().prop_map(Stmt::InsertDept),
        proptest::array::uniform5(proptest::option::of(0i64..6)).prop_map(Stmt::InsertM),
        small.clone().prop_map(Stmt::DeleteDept),
        small.prop_map(Stmt::DeleteM),
    ]
}

fn to_tuple(vals: &[Option<i64>]) -> Tuple {
    Tuple::new(
        vals.iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness + completeness of incremental enforcement: after every
    /// statement the snapshot is consistent, and every rejected insert
    /// would in fact have made the snapshot inconsistent (checked by
    /// replaying it into a copy of the state).
    #[test]
    fn engine_agrees_with_declarative_checker(stmts in proptest::collection::vec(stmt_strategy(), 1..60)) {
        let schema = merged_shape_schema();
        let mut db = Database::new(schema.clone(), DbmsProfile::ideal()).expect("db");
        for stmt in stmts {
            let before = db.snapshot().expect("snapshot");
            let outcome: Result<(), DmlError> = match &stmt {
                Stmt::InsertDept(k) => db.insert("DEPT", Tuple::new([Value::Int(*k)])).map(|_| ()),
                Stmt::InsertM(vals) => db.insert("M", to_tuple(vals)).map(|_| ()),
                Stmt::DeleteDept(k) => db
                    .delete_by_key("DEPT", &Tuple::new([Value::Int(*k)]))
                    .map(|_| ()),
                Stmt::DeleteM(k) => db
                    .delete_by_key("M", &Tuple::new([Value::Int(*k)]))
                    .map(|_| ()),
            };
            let after = db.snapshot().expect("snapshot");
            // Invariant: the live state is always consistent.
            prop_assert!(
                after.is_consistent(&schema).expect("check"),
                "inconsistent after {stmt:?}"
            );
            if outcome.is_err() {
                // The state must be unchanged…
                prop_assert_eq!(&before, &after, "rejected {:?} mutated state", &stmt);
                // …and force-applying the statement must violate something
                // (completeness of the rejection).
                let forced = force_apply(&before, &stmt);
                if let Some(forced) = forced {
                    prop_assert!(
                        !forced.is_consistent(&schema).expect("check"),
                        "{stmt:?} was rejected but would be consistent"
                    );
                }
            }
        }
    }
}

/// The relations the traced-DML property below operates on. The tracer's
/// event log is process-global and the other property in this binary may
/// run concurrently (on `DEPT`/`M`), so events are filtered by relation.
const TRACED_RELS: [&str; 4] = ["COURSE", "OFFER", "TEACH", "ASSIST"];

fn rel_field(e: &obs::SpanEvent) -> Option<&str> {
    e.fields
        .iter()
        .find(|(k, _)| *k == "rel")
        .map(|(_, v)| v.as_str())
}

fn result_field(e: &obs::SpanEvent, want: &str) -> bool {
    e.fields.iter().any(|(k, v)| *k == "result" && v == want)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The metrics registry and the tracer observe the same reality: for a
    /// random DML stream, each shard counter equals the number of span
    /// events with the matching outcome, and each DML latency histogram
    /// holds exactly one sample per call.
    #[test]
    fn registry_counters_match_trace_events(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = generate_university(
            &UniversitySpec {
                courses: 40,
                departments: 5,
                persons: 40,
                ..UniversitySpec::default()
            },
            &mut rng,
        )
        .expect("university");
        let mut db = Database::new(u.schema.clone(), DbmsProfile::ideal()).expect("db");
        db.load_state(&u.state).expect("load");
        let ops = university_ops(
            &MixSpec {
                point_reads: 0.2,
                reverse_reads: 0.2,
                inserts: 0.4,
                deletes: 0.2,
            },
            60,
            40,
            5,
            16,
            &mut rng,
        );

        let before = db.metrics_registry().snapshot();
        obs::set_enabled(true);
        for op in &ops {
            match op {
                UniversityOp::AddCourse { nr, dept, teacher } => {
                    let _ = db.insert("COURSE", Tuple::new([Value::Int(*nr)]));
                    let _ = db.insert(
                        "OFFER",
                        Tuple::new([Value::Int(*nr), Value::text(format!("dept{dept}"))]),
                    );
                    if let Some(t) = teacher {
                        let _ =
                            db.insert("TEACH", Tuple::new([Value::Int(*nr), Value::Int(*t)]));
                    }
                }
                UniversityOp::DropCourse { nr } => {
                    let key = Tuple::new([Value::Int(*nr)]);
                    for rel in ["TEACH", "ASSIST", "OFFER", "COURSE"] {
                        let _ = db.delete_by_key(rel, &key);
                    }
                }
                // Repurpose the read ops as failure probes so the stream
                // also exercises the rejection paths: an OFFER for a course
                // that does not exist (IND violation) and a delete of a
                // possibly-still-offered base course (RESTRICT violation).
                UniversityOp::CourseDetail { nr } => {
                    let _ = db.insert(
                        "OFFER",
                        Tuple::new([Value::Int(-nr - 1), Value::text("dept0")]),
                    );
                }
                UniversityOp::ByFaculty { ssn } => {
                    let _ = db.delete_by_key("COURSE", &Tuple::new([Value::Int(ssn - 10_000)]));
                }
            }
        }
        obs::set_enabled(false);
        let events = obs::take_events();
        let diff = db.metrics_registry().snapshot().diff(&before);

        let mine = |e: &&obs::SpanEvent| {
            rel_field(e).is_some_and(|r| TRACED_RELS.contains(&r))
        };
        let count = |name: &str, result: &str| -> u64 {
            events
                .iter()
                .filter(mine)
                .filter(|e| e.name == name && result_field(e, result))
                .count() as u64
        };
        let calls = |name: &str| -> u64 {
            events.iter().filter(mine).filter(|e| e.name == name).count() as u64
        };
        let counter = |name: &str| diff.counters.get(name).copied().unwrap_or(0);
        let hist_count =
            |name: &str| diff.histograms.get(name).map_or(0, |h| h.count);

        prop_assert_eq!(counter("engine.dml.inserts"), count("engine.dml.insert", "inserted"));
        prop_assert_eq!(counter("engine.dml.deletes"), count("engine.dml.delete", "deleted"));
        prop_assert_eq!(
            counter("engine.dml.rejected"),
            count("engine.dml.insert", "rejected") + count("engine.dml.delete", "rejected")
        );
        prop_assert_eq!(hist_count("engine.dml.insert.ns"), calls("engine.dml.insert"));
        prop_assert_eq!(hist_count("engine.dml.delete.ns"), calls("engine.dml.delete"));
        // The per-mechanism totals agree with their per-class splits.
        prop_assert_eq!(
            counter("engine.check.declarative"),
            counter("engine.check.null.declarative")
                + counter("engine.check.key.declarative")
                + counter("engine.check.ind.declarative")
                + counter("engine.check.restrict.declarative")
        );
        prop_assert_eq!(counter("engine.check.procedural"), 0);
    }
}

/// Applies a statement to a state copy without any checking. Returns
/// `None` for deletes of absent keys (nothing to force).
fn force_apply(state: &DatabaseState, stmt: &Stmt) -> Option<DatabaseState> {
    let mut s = state.clone();
    match stmt {
        Stmt::InsertDept(k) => {
            s.relation_mut("DEPT")
                .expect("dept")
                .insert(Tuple::new([Value::Int(*k)]))
                .ok()?;
        }
        Stmt::InsertM(vals) => {
            s.relation_mut("M")
                .expect("m")
                .insert(to_tuple(vals))
                .ok()?;
        }
        Stmt::DeleteDept(k) => {
            let rel = s.relation_mut("DEPT").expect("dept");
            let victim = rel.iter().find(|t| t.get(0) == &Value::Int(*k)).cloned()?;
            rel.remove(&victim);
        }
        Stmt::DeleteM(k) => {
            let rel = s.relation_mut("M").expect("m");
            let victim = rel.iter().find(|t| t.get(0) == &Value::Int(*k)).cloned()?;
            rel.remove(&victim);
        }
    }
    Some(s)
}
