//! Whole-system property test: the advisor applied to random forest
//! schemas (arbitrary key-reference DAGs with non-key foreign keys)
//! produces pipelines whose composed mappings preserve information
//! capacity, whatever got merged.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use relmerge::core::{Advisor, AdvisorConfig};
use relmerge::workload::{consistent_state, forest_schema, ForestSpec, StateSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn advisor_pipeline_preserves_capacity_on_forests(
        schemes in 2usize..9,
        key_ref_prob in 0.0f64..=1.0,
        max_non_key in 0usize..4,
        fk_prob in 0.0f64..=1.0,
        rows in 1usize..40,
        coverage in 0.0f64..=1.0,
        permissive in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let spec = ForestSpec { schemes, key_ref_prob, max_non_key, fk_prob };
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = forest_schema(&spec, &mut rng);
        schema.validate().expect("generator output is valid");

        let config = if permissive {
            AdvisorConfig::permissive()
        } else {
            AdvisorConfig::declarative_only()
        };
        let (final_schema, pipeline) =
            Advisor::new(config).greedy_pipeline(&schema).expect("advisor");
        prop_assert!(final_schema.schemes().len() <= schema.schemes().len());
        prop_assert!(final_schema.is_bcnf());
        if !permissive {
            prop_assert!(final_schema.nna_only(), "declarative config must stay NNA-only");
            prop_assert!(final_schema.key_based_inds_only());
        }

        // Carry a random consistent state through the whole pipeline and
        // back.
        let state = consistent_state(
            &schema,
            &StateSpec { root_rows: rows, coverage },
            &mut rng,
        ).expect("state");
        prop_assert!(state.is_consistent(&schema).expect("check"));
        let merged = pipeline.apply(&state).expect("apply");
        if !pipeline.is_empty() {
            prop_assert!(merged.is_consistent(&final_schema).expect("check"));
        }
        let back = pipeline.invert(&merged).expect("invert");
        prop_assert_eq!(back, state);
    }
}
