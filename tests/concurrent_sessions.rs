//! Concurrent-session coverage: random interleavings of reader sessions
//! and writer batches over one shared [`Store`] — every read must be
//! byte-identical to a serial replay at its pinned version vector, at
//! every worker count, with the shared build cache on or off; pinned
//! snapshots stay frozen while writers commit; and the shared cache
//! serves cross-session hits without ever serving a stale or
//! predicate-mismatched build (stale service would break the replay
//! byte-identity).

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use relmerge::engine::{
    Database, DbmsProfile, EngineConfig, JoinStep, Predicate, QueryPlan, Snapshot, Statement,
    Store, DEFAULT_BUILD_CACHE_BYTES,
};
use relmerge::relational::{
    Attribute, Domain, InclusionDep, NullConstraint, Relation, RelationScheme, RelationalSchema,
    Tuple, Value,
};

/// PARENT-with-payload / CHILD schema: `P.V` is deliberately not covered
/// by any index, so joining on it goes through the transient hash build
/// — and therefore through the shared versioned build cache.
fn schema() -> RelationalSchema {
    let mut rs = RelationalSchema::new();
    rs.add_scheme(
        RelationScheme::new(
            "P",
            vec![
                Attribute::new("P.K", Domain::Int),
                Attribute::new("P.V", Domain::Int),
            ],
            &["P.K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_scheme(
        RelationScheme::new(
            "C",
            vec![
                Attribute::new("C.K", Domain::Int),
                Attribute::new("C.FK", Domain::Int),
            ],
            &["C.K"],
        )
        .unwrap(),
    )
    .unwrap();
    rs.add_null_constraint(NullConstraint::nna("P", &["P.K"]))
        .unwrap();
    rs.add_null_constraint(NullConstraint::nna("C", &["C.K", "C.FK"]))
        .unwrap();
    rs.add_ind(InclusionDep::new("C", &["C.FK"], "P", &["P.K"]))
        .unwrap();
    rs
}

fn row(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>())
}

fn engine_config(workers: usize, cache_on: bool) -> EngineConfig {
    EngineConfig::default()
        .parallelism(workers)
        .hash_join_threshold(0)
        .morsel_rows(4)
        .build_cache_capacity(if cache_on {
            DEFAULT_BUILD_CACHE_BYTES
        } else {
            0
        })
}

/// The deterministic baseline both the store master and the serial
/// replay start from: P(k, k) for k in 1..=3, C(10,1), C(11,2).
fn seed_db(config: &EngineConfig) -> Database {
    let mut db = Database::new_with_config(schema(), DbmsProfile::ideal(), config.clone()).unwrap();
    for k in 1..=3 {
        db.insert("P", row(&[k, k])).unwrap();
    }
    db.insert("C", row(&[10, 1])).unwrap();
    db.insert("C", row(&[11, 2])).unwrap();
    db
}

const QUERY_COUNT: u32 = 4;

/// The read mix. Query 0 joins on the un-indexed `P.V` (transient hash
/// build through the shared cache); query 1 adds a pushed predicate, so
/// its cached build carries a different predicate fingerprint than
/// query 0's over the same `(relation, attrs, version)` — a
/// predicate-mismatched hit would change its bytes.
fn query(idx: u32) -> QueryPlan {
    match idx {
        0 => QueryPlan::scan("C").join(JoinStep::inner("P", &["C.FK"], &["P.V"])),
        1 => QueryPlan::scan("C")
            .join(JoinStep::inner("P", &["C.FK"], &["P.V"]))
            .filter(Predicate::eq("P.V", Value::Int(1))),
        2 => QueryPlan::scan("P"),
        _ => QueryPlan::lookup("P", &["P.K"], row(&[2])),
    }
}

/// The version vector of a plain database — the serial-replay side of
/// the determinism contract ([`Snapshot::version_vector`] is the pinned
/// side).
fn vv(db: &Database) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = db
        .schema()
        .schemes()
        .iter()
        .map(|s| (s.name().to_owned(), db.relation_version(s.name()).unwrap()))
        .collect();
    v.sort();
    v
}

/// One random mostly-valid write batch; dangling references happen (and
/// must roll back identically in the store and in the replay).
fn random_batch(
    rng: &mut StdRng,
    n: usize,
    next_parent: &mut i64,
    next_child: &mut i64,
) -> Vec<Statement> {
    let mut stmts = Vec::new();
    for _ in 0..n {
        match rng.gen_range(0..4u32) {
            0 => {
                stmts.push(Statement::insert("P", row(&[*next_parent, *next_parent])));
                *next_parent += 1;
            }
            1 => {
                let fk = if rng.gen_bool(0.8) {
                    if *next_parent > 100 && rng.gen_bool(0.5) {
                        rng.gen_range(100..*next_parent)
                    } else {
                        rng.gen_range(1..4)
                    }
                } else {
                    9_999 // dangling: the batch aborts and rolls back
                };
                stmts.push(Statement::insert("C", row(&[*next_child, fk])));
                *next_child += 1;
            }
            2 => stmts.push(Statement::delete(
                "C",
                row(&[rng.gen_range(999..*next_child)]),
            )),
            _ => stmts.push(Statement::delete(
                "P",
                row(&[rng.gen_range(99..*next_parent)]),
            )),
        }
    }
    stmts
}

/// One recorded read: the pinned version vector, the query issued, and
/// the rows it returned.
struct Read {
    vector: Vec<(String, u64)>,
    query: u32,
    rows: Relation,
}

/// Replays `batches` serially against a fresh baseline database and
/// checks every recorded read byte-identical at its matching version
/// vector. Returns an error description instead of panicking so the
/// proptest harness can minimize.
fn check_against_serial_replay(
    config: &EngineConfig,
    batches: &[Vec<Statement>],
    reads: &[Read],
) -> Result<(), String> {
    let mut replay = seed_db(config);
    let mut matched = vec![false; reads.len()];
    let check = |db: &Database, matched: &mut Vec<bool>| -> Result<(), String> {
        let here = vv(db);
        for (i, read) in reads.iter().enumerate() {
            if read.vector == here {
                let (rows, _) = db
                    .execute(&query(read.query))
                    .map_err(|e| format!("replay query failed: {e}"))?;
                if rows != read.rows {
                    return Err(format!(
                        "read of query {} at {:?} diverges from serial replay",
                        read.query, read.vector
                    ));
                }
                matched[i] = true;
            }
        }
        Ok(())
    };
    check(&replay, &mut matched)?;
    for batch in batches {
        // Failed batches replay too: their rollback re-mutates rows, so
        // slot layout and versions advance exactly as they did live.
        let _ = replay.apply_batch(batch);
        check(&replay, &mut matched)?;
    }
    if let Some(missing) = matched.iter().position(|m| !m) {
        return Err(format!(
            "read at {:?} matched no serial commit boundary",
            reads[missing].vector
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random single-schedule interleavings of pins, reads, pin drops,
    /// and writer batches: every read must equal the serial replay at
    /// its pinned version vector, with the cache on or off, at every
    /// worker count.
    #[test]
    fn snapshot_reads_match_serial_replay(
        seed in 0u64..1_000_000,
        n_ops in 8usize..28,
        workers in prop::sample::select(vec![1usize, 2, 4]),
        cache_on in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = engine_config(workers, cache_on);
        let store = Store::new(seed_db(&config));
        let writer = store.session();
        let readers = [store.session(), store.session()];

        let mut batches: Vec<Vec<Statement>> = Vec::new();
        let mut reads: Vec<Read> = Vec::new();
        let mut pins: Vec<Snapshot> = vec![readers[0].pin().unwrap()];
        let (mut next_parent, mut next_child) = (100i64, 1000i64);
        for _ in 0..n_ops {
            match rng.gen_range(0..4u32) {
                0 => {
                    let n = rng.gen_range(1..6);
                    let batch = random_batch(&mut rng, n, &mut next_parent, &mut next_child);
                    let _ = writer.apply_batch(&batch); // natural failures allowed
                    batches.push(batch);
                }
                1 => {
                    let r = rng.gen_range(0..readers.len());
                    pins.push(readers[r].pin().unwrap());
                }
                2 => {
                    let pin = &pins[rng.gen_range(0..pins.len())];
                    let q = rng.gen_range(0..QUERY_COUNT);
                    let (rows, _) = pin.execute(&query(q)).unwrap();
                    reads.push(Read { vector: pin.version_vector(), query: q, rows });
                }
                _ => {
                    if pins.len() > 1 {
                        let i = rng.gen_range(0..pins.len());
                        pins.remove(i);
                    }
                }
            }
        }
        // Old pins survive arbitrary writer traffic: read them all again
        // at the end — each must still replay at its (old) vector.
        for pin in &pins {
            let q = rng.gen_range(0..QUERY_COUNT);
            let (rows, _) = pin.execute(&query(q)).unwrap();
            reads.push(Read { vector: pin.version_vector(), query: q, rows });
        }
        prop_assert!(store.verify_integrity().is_clean());
        if let Err(detail) = check_against_serial_replay(&config, &batches, &reads) {
            prop_assert!(false, "{}", detail);
        }
    }
}

/// Genuinely concurrent traffic: one writer thread streams batches while
/// reader threads pin and query; afterwards every recorded read must
/// match the serial replay at its pinned vector. (The writer is single,
/// so the batch order the replay needs is exactly the stream order.)
#[test]
fn threaded_readers_match_serial_replay_under_writes() {
    for workers in [1usize, 2, 4] {
        let config = engine_config(workers, true);
        let store = Store::new(seed_db(&config));

        let mut rng = StdRng::seed_from_u64(0xb12 + workers as u64);
        let (mut next_parent, mut next_child) = (100i64, 1000i64);
        let batches: Vec<Vec<Statement>> = (0..12)
            .map(|_| {
                let n = rng.gen_range(1..5);
                random_batch(&mut rng, n, &mut next_parent, &mut next_child)
            })
            .collect();

        let reads: Vec<Read> = std::thread::scope(|scope| {
            let writer_store = store.clone();
            let writer_batches = &batches;
            let writer = scope.spawn(move || {
                let session = writer_store.session();
                for batch in writer_batches {
                    let _ = session.apply_batch(batch);
                }
            });
            let reader_handles: Vec<_> = (0..2)
                .map(|t| {
                    let reader_store = store.clone();
                    scope.spawn(move || {
                        let session = reader_store.session();
                        let mut out = Vec::new();
                        for i in 0..10u32 {
                            let pin = session.pin().unwrap();
                            let q = (i + t) % QUERY_COUNT;
                            let (rows, _) = pin.execute(&query(q)).unwrap();
                            out.push(Read {
                                vector: pin.version_vector(),
                                query: q,
                                rows,
                            });
                        }
                        out
                    })
                })
                .collect();
            writer.join().unwrap();
            reader_handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });

        assert!(store.verify_integrity().is_clean());
        check_against_serial_replay(&config, &batches, &reads)
            .unwrap_or_else(|detail| panic!("workers={workers}: {detail}"));
    }
}

/// The shared cache serves cross-session hits: the second session's
/// identical join reuses the first session's build (hit counter > 0),
/// returning byte-identical rows.
#[test]
fn shared_cache_serves_cross_session_hits() {
    let store = Store::new(seed_db(&engine_config(2, true)));
    let s1 = store.session();
    let s2 = store.session();
    let q = query(0);
    let (r1, _) = s1.pin().unwrap().execute(&q).unwrap();
    let snap2 = s2.pin().unwrap();
    let (r2, _) = snap2.execute(&q).unwrap();
    assert_eq!(r1, r2);
    // Fold s2's metrics shard into the store registry and read the hit
    // counter there — charged on s2's read, proving the reuse crossed
    // sessions.
    let before = store.metrics_registry().snapshot();
    drop(snap2);
    drop(s2);
    let diff = store.metrics_registry().snapshot().diff(&before);
    assert!(
        diff.counters
            .get("engine.query.build_cache.hits")
            .copied()
            .unwrap_or(0)
            > 0,
        "the second session's identical join must hit the shared cache"
    );
}

/// A version bump invalidates for everyone: after a write that changes
/// the build side, a fresh pin's join reflects the new rows (no stale
/// build served), while an old pin keeps its frozen result.
#[test]
fn writes_invalidate_the_shared_cache_without_disturbing_old_pins() {
    let store = Store::new(seed_db(&engine_config(1, true)));
    let session = store.session();
    let q = query(0);
    let old_pin = session.pin().unwrap();
    let (old_rows, _) = old_pin.execute(&q).unwrap();

    // New parent P(4,1) matches C(10,1)'s FK-on-V join: the join result
    // must grow by exactly the rows a fresh database would produce.
    session.insert("P", row(&[4, 1])).unwrap();
    let (new_rows, _) = session.pin().unwrap().execute(&q).unwrap();
    assert!(new_rows.len() > old_rows.len(), "stale build served");

    // The old pin is frozen: same bytes as before the write, even though
    // the shared cache now holds newer builds too.
    let (again, _) = old_pin.execute(&q).unwrap();
    assert_eq!(again, old_rows);
}
