//! # relmerge
//!
//! A production-quality Rust implementation of **Victor M. Markowitz,
//! "A Relation Merging Technique for Relational Databases", ICDE 1992**
//! (LBL-27842): BCNF-preserving merging of relation-schemes in relational
//! schemas consisting of relation-schemes, key dependencies, referential
//! integrity constraints, and null constraints.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! ```
//! use relmerge::relational::{Attribute, Domain, RelationScheme, RelationalSchema};
//! use relmerge::relational::{InclusionDep, NullConstraint};
//! use relmerge::core::Merge;
//!
//! // Figure 2 of the paper: merge OFFER and TEACH into one relation-scheme.
//! let mut rs = RelationalSchema::new();
//! rs.add_scheme(RelationScheme::new(
//!     "OFFER",
//!     vec![Attribute::new("O.CN", Domain::Int), Attribute::new("O.DN", Domain::Text)],
//!     &["O.CN"],
//! ).unwrap()).unwrap();
//! rs.add_scheme(RelationScheme::new(
//!     "TEACH",
//!     vec![Attribute::new("T.CN", Domain::Int), Attribute::new("T.FN", Domain::Text)],
//!     &["T.CN"],
//! ).unwrap()).unwrap();
//! rs.add_null_constraint(NullConstraint::nna("OFFER", &["O.CN", "O.DN"])).unwrap();
//! rs.add_null_constraint(NullConstraint::nna("TEACH", &["T.CN", "T.FN"])).unwrap();
//! // TEACH[T.CN] ⊆ OFFER[O.CN] makes OFFER the key-relation.
//! rs.add_ind(InclusionDep::new("TEACH", &["T.CN"], "OFFER", &["O.CN"])).unwrap();
//!
//! let merge = Merge::plan(&rs, &["OFFER", "TEACH"], "ASSIGN").unwrap();
//! let merged = merge.schema();
//! assert!(merged.scheme("ASSIGN").is_some());
//! assert!(merged.is_bcnf());
//! ```

pub use relmerge_core as core;
pub use relmerge_ddl as ddl;
pub use relmerge_eer as eer;
pub use relmerge_engine as engine;
pub use relmerge_obs as obs;
pub use relmerge_relational as relational;
pub use relmerge_workload as workload;
